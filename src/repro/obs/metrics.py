"""Counters, gauges and histograms with plain-text and JSON dumps.

Where :mod:`repro.obs.trace` answers "what did *this* operation
cost?", the metrics registry answers the fleet-level questions an
operator of the ROADMAP's production deployment would ask: how many
splits so far, how loaded are the buckets, what is the measured
false-positive rate, how is search latency distributed.

Three instrument types, all deliberately tiny:

* :class:`Counter` — monotonically increasing total (split events,
  retries, messages by kind).
* :class:`Gauge` — last-written value (load factor, bucket count).
* :class:`Histogram` — fixed-bound bucket counts plus count/sum/
  min/max (search latency, message sizes, per-query false positives).

A :class:`MetricsRegistry` holds instruments by name and renders them
as prometheus-style plain text (:meth:`MetricsRegistry.dump_text`) or
JSON (:meth:`MetricsRegistry.dump_json`).  Like the tracer, a
registry only costs anything once installed via :func:`set_metrics` /
:func:`use_metrics`; the module-level :func:`inc` / :func:`observe` /
:func:`set_gauge` hooks are ``None``-check no-ops otherwise.

>>> registry = MetricsRegistry()
>>> with use_metrics(registry):
...     inc("lh.split")
...     inc("lh.split")
...     observe("ess.search.elapsed", 0.004)
...     set_gauge("lh.load_factor", 0.61)
>>> registry.counter("lh.split").value
2
>>> registry.gauge("lh.load_factor").value
0.61
>>> registry.histogram("ess.search.elapsed").count
1
>>> print(registry.dump_text())
counter lh.split 2
gauge lh.load_factor 0.61
histogram ess.search.elapsed count=1 sum=0.004 min=0.004 max=0.004
"""

from __future__ import annotations

import json
from bisect import bisect_left
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

#: Default histogram bounds: geometric, wide enough for both simulated
#: seconds (sub-millisecond LAN round-trips) and byte/count payloads.
DEFAULT_BOUNDS = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5,
    1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0,
)


@dataclass
class Counter:
    """A monotonically increasing total."""

    name: str
    value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def to_dict(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


@dataclass
class Gauge:
    """A last-write-wins instantaneous value."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def to_dict(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


@dataclass
class Histogram:
    """Fixed-bound bucket counts with count/sum/min/max.

    ``bounds`` are the inclusive upper edges of the buckets; one
    overflow bucket catches everything beyond the last edge.  The
    summary statistics are exact whatever the bounds.
    """

    name: str
    bounds: tuple[float, ...] = DEFAULT_BOUNDS
    buckets: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    minimum: float | None = None
    maximum: float | None = None

    def __post_init__(self) -> None:
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted")
        if not self.buckets:
            self.buckets = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile (upper edge of the q-bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must lie in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, count in enumerate(self.buckets):
            cumulative += count
            if cumulative >= rank:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.maximum if self.maximum is not None else 0.0
        return self.maximum if self.maximum is not None else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
        }


class MetricsRegistry:
    """Instruments by name; create-on-first-use accessors."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- accessors ----------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        return gauge

    def histogram(
        self, name: str, bounds: tuple[float, ...] | None = None
    ) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(
                name, bounds=bounds or DEFAULT_BOUNDS
            )
        return histogram

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    # -- dumps --------------------------------------------------------------

    def to_dict(self) -> dict[str, dict[str, Any]]:
        """All instruments as one JSON-ready mapping, sorted by name."""
        merged: dict[str, dict[str, Any]] = {}
        for family in (self.counters, self.gauges, self.histograms):
            for name, instrument in family.items():
                merged[name] = instrument.to_dict()
        return dict(sorted(merged.items()))

    def dump_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def dump_text(self) -> str:
        """Plain-text dump: one instrument per line, counters first."""
        lines = []
        for name in sorted(self.counters):
            lines.append(f"counter {name} {self.counters[name].value}")
        for name in sorted(self.gauges):
            lines.append(f"gauge {name} {self.gauges[name].value}")
        for name in sorted(self.histograms):
            h = self.histograms[name]
            lines.append(
                f"histogram {name} count={h.count} sum={h.total:g} "
                f"min={0 if h.minimum is None else h.minimum:g} "
                f"max={0 if h.maximum is None else h.maximum:g}"
            )
        return "\n".join(lines)


# -- global installation ------------------------------------------------------

_ACTIVE: MetricsRegistry | None = None


def get_metrics() -> MetricsRegistry | None:
    """The globally installed registry, or None."""
    return _ACTIVE


def set_metrics(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Install ``registry`` globally; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


@contextmanager
def use_metrics(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` for the duration of a ``with`` block."""
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)


def inc(name: str, amount: int | float = 1) -> None:
    """Hot-path hook: bump a counter on the active registry, if any."""
    registry = _ACTIVE
    if registry is not None:
        registry.counter(name).inc(amount)


def set_gauge(name: str, value: float) -> None:
    """Hot-path hook: write a gauge on the active registry, if any."""
    registry = _ACTIVE
    if registry is not None:
        registry.gauge(name).set(value)


def observe(name: str, value: float) -> None:
    """Hot-path hook: record a histogram sample, if a registry is on."""
    registry = _ACTIVE
    if registry is not None:
        registry.histogram(name).observe(value)


class NetworkMetricsObserver:
    """Feeds a registry from a Network's observer hooks.

    Attach with :func:`watch_network`; per message it records the
    kind-tagged counters plus size and delivery-latency histograms.
    Detach by setting ``network.observer = None``.
    """

    __slots__ = ("registry",)

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry

    def on_send(self, kind: str, size: int) -> None:
        self.registry.counter(f"net.sent.{kind}").inc()
        self.registry.histogram("net.message_size").observe(size)

    def on_drop(self, kind: str, size: int) -> None:
        self.registry.counter("net.dropped").inc()

    def on_deliver(self, kind: str, size: int, latency: float) -> None:
        self.registry.counter("net.delivered").inc()
        self.registry.histogram("net.delivery_latency").observe(latency)


def watch_network(network, registry: MetricsRegistry | None = None):
    """Attach a :class:`NetworkMetricsObserver` to ``network``.

    Uses the globally installed registry when none is given; creates
    and installs nothing implicitly — a registry must exist.
    """
    registry = registry or _ACTIVE
    if registry is None:
        raise ValueError(
            "no metrics registry: pass one or install via set_metrics()"
        )
    observer = NetworkMetricsObserver(registry)
    network.observer = observer
    return observer
