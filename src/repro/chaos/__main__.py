"""CLI: ``python -m repro.chaos --seed N``.

Runs chaos episodes, writes JSONL episode reports, and on an
invariant violation delta-debugs the fault schedule down to a minimal
reproducing schedule serialized for replay (``--replay``).  Exit
status 1 when any episode violated an invariant; 0 otherwise.

Examples::

    python -m repro.chaos --seed 7
    python -m repro.chaos --seeds 25 --out chaos-out
    python -m repro.chaos --seed 7 --replay chaos-out/schedule-7.min.json
    python -m repro.chaos --seed 3 --corruption-only
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import replace

from repro.chaos.nemesis import (
    NemesisProfile,
    dump_schedule,
    load_schedule,
)
from repro.chaos.runner import EpisodeConfig, run_episode, write_report
from repro.chaos.shrink import make_reproducer, shrink_schedule


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Deterministic chaos episodes over the encrypted-"
                    "search SDDS stack.",
    )
    parser.add_argument("--seed", type=int, default=None,
                        help="run a single episode with this seed")
    parser.add_argument("--seeds", type=int, default=None,
                        help="run episodes for seeds 0..N-1")
    parser.add_argument("--ops", type=int, default=60,
                        help="workload operations per episode")
    parser.add_argument("--records", type=int, default=16,
                        help="corpus records preloaded per episode")
    parser.add_argument("--out", default="chaos-out",
                        help="directory for reports and schedules")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip schedule minimisation on failure")
    parser.add_argument("--replay", default=None, metavar="SCHEDULE",
                        help="replay a serialized fault schedule "
                             "instead of composing one")
    parser.add_argument("--corruption-only", action="store_true",
                        help="corruption bursts only (no loss, "
                             "duplication, partitions, or crashes)")
    parser.add_argument("--elasticity", action="store_true",
                        help="compose membership events (merge-"
                             "pressure and join windows, graceful "
                             "leaves, tombstone crash+rejoin) over "
                             "shrinking files, on top of softened "
                             "message/crash faults")
    parser.add_argument("--max-shrink-evals", type=int, default=120,
                        help="replay budget for the shrinker")
    parser.add_argument("--backend", choices=("simulator", "live"),
                        default="simulator",
                        help="run episodes on the event simulator "
                             "(default) or against a live cluster of "
                             "site processes")
    parser.add_argument("--live-sites", type=int, default=12,
                        help="initial site-process count for "
                             "--backend live (splits spawn more)")
    return parser


def make_config(args: argparse.Namespace) -> EpisodeConfig:
    profile = NemesisProfile()
    if args.corruption_only:
        profile = replace(
            profile,
            loss_rate=0.0, loss_windows=0,
            duplication_rate=0.0, duplication_windows=0,
            latency_extra=0.0, latency_windows=0,
            partition_windows=0,
            crash_windows=0,
            corruption_rate=0.3, corruption_windows=4,
        )
    shrink = False
    merge_threshold = 0.4
    if args.elasticity:
        # Membership chaos: soften the message/crash fault classes
        # (the elasticity machinery itself is the stressor) and give
        # the short merge-pressure windows a threshold they can
        # actually push the file under.
        shrink = True
        merge_threshold = 0.6
        profile = replace(
            profile,
            loss_rate=0.05, loss_windows=1,
            duplication_rate=0.02, duplication_windows=1,
            corruption_rate=0.0, latency_windows=0,
            partition_windows=1, crash_windows=1,
            merge_pressure_windows=2, join_windows=1,
            leave_events=1, rejoin_windows=1,
            window=0.6, horizon=2.5,
        )
    if args.backend == "live" and not args.elasticity:
        # Wall-clock horizons: the live cluster runs in real time, so
        # the default 40-simulated-second schedule would take 40 real
        # seconds per episode.  Compress the windows instead (the
        # elasticity profile is already compact, and keeping it
        # identical across backends preserves episode parity).
        profile = replace(
            profile, window=min(profile.window, 0.4),
            horizon=min(profile.horizon, 3.0),
        )
    return EpisodeConfig(
        records=args.records, ops=args.ops, profile=profile,
        backend=args.backend, live_sites=args.live_sites,
        shrink=shrink, merge_threshold=merge_threshold,
    )


def run_one(seed: int, args: argparse.Namespace,
            config: EpisodeConfig) -> bool:
    """Run (and maybe shrink) one episode; returns pass/fail."""
    events = None
    if args.replay:
        events = load_schedule(args.replay)
    report = run_episode(seed, config=config, events=events)
    os.makedirs(args.out, exist_ok=True)
    report_path = os.path.join(args.out, f"episode-{seed}.jsonl")
    write_report(report, report_path)
    stats = report.stats
    print(
        f"seed {seed}: "
        f"{'OK' if report.ok else 'VIOLATED'} — "
        f"{report.ops_applied} ops ({report.ops_failed} failed), "
        f"{stats['messages']} msgs, "
        f"{stats['dropped']} dropped, "
        f"{stats['duplicated']} dup'd, "
        f"{stats['corrupted']} corrupted, "
        f"{stats['partitioned_drops']} partitioned, "
        f"{stats['crashed_drops']} crash-dropped, "
        f"{report.nemesis['crashes']} crashes, "
        f"clock {report.elapsed:.2f}s -> {report_path}"
    )
    if report.ok:
        return True
    for violation in report.violations:
        print(f"  [{violation.invariant}] {violation.detail}")
    schedule_path = os.path.join(args.out, f"schedule-{seed}.json")
    dump_schedule(report.events, schedule_path)
    print(f"  failing schedule ({len(report.events)} events) -> "
          f"{schedule_path}")
    if not args.no_shrink and report.events:
        invariant = report.violations[0].invariant
        shrunk = shrink_schedule(
            report.events,
            make_reproducer(seed, config, invariant),
            max_evaluations=args.max_shrink_evals,
        )
        if shrunk.reproduced:
            minimal_path = os.path.join(
                args.out, f"schedule-{seed}.min.json"
            )
            dump_schedule(shrunk.events, minimal_path)
            print(
                f"  shrunk to {len(shrunk.events)} events in "
                f"{shrunk.evaluations} replays -> {minimal_path}"
            )
        else:
            print("  shrink inconclusive: the full schedule did not "
                  "re-reproduce (non-schedule nondeterminism?)")
    return False


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.seed is None and args.seeds is None:
        args.seed = 0
    seeds = (
        [args.seed] if args.seed is not None
        else list(range(args.seeds))
    )
    config = make_config(args)
    failures = 0
    for seed in seeds:
        if not run_one(seed, args, config):
            failures += 1
    if failures:
        print(f"{failures}/{len(seeds)} episodes violated invariants")
    else:
        print(f"{len(seeds)}/{len(seeds)} episodes passed all "
              "invariants")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
