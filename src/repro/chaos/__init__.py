"""Deterministic chaos engine for the encrypted-search SDDS stack.

FoundationDB-style simulation testing over the repro simulator: a
seeded :class:`~repro.chaos.nemesis.Nemesis` composes every fault
class the net layer can express — message loss, duplication, payload
corruption, node crash/restore, link partitions, latency spikes —
into one schedule advanced lazily against the workload clock, while
:mod:`repro.chaos.invariants` checks the faulted store against a
fault-free twin.  A violated invariant is delta-debugged by
:mod:`repro.chaos.shrink` down to a minimal reproducing schedule that
serializes for replay.

Entry point::

    python -m repro.chaos --seed 7

Everything is a pure function of the seed: no wall clock, no
unseeded randomness — the same seed always produces a byte-identical
episode report.
"""

from repro.chaos.nemesis import (
    FaultEvent,
    Nemesis,
    NemesisProfile,
    compose_schedule,
    dump_schedule,
    load_schedule,
    register_action,
)
from repro.chaos.invariants import Violation
from repro.chaos.runner import EpisodeConfig, EpisodeReport, run_episode
from repro.chaos.shrink import (
    ShrinkResult,
    make_reproducer,
    shrink_schedule,
)

__all__ = [
    "FaultEvent",
    "Nemesis",
    "NemesisProfile",
    "compose_schedule",
    "dump_schedule",
    "load_schedule",
    "register_action",
    "Violation",
    "EpisodeConfig",
    "EpisodeReport",
    "run_episode",
    "ShrinkResult",
    "make_reproducer",
    "shrink_schedule",
]
