"""Delta-debugging a failing fault schedule to a minimal core.

When an episode violates an invariant, the schedule that provoked it
may hold dozens of fault events, almost all irrelevant.  Classic
ddmin (Zeller & Hildebrandt) over the event list — try dropping
chunks, keep any reduction that still reproduces, refine granularity —
followed by a one-event-at-a-time minimality pass yields a *minimal
reproducing schedule*: removing any single remaining event makes the
violation disappear.  Determinism makes this sound: replaying the
same (seed, config, schedule) triple always yields the same episode,
so "still reproduces" is a pure predicate.

Reproduction is matched by *invariant name* (e.g. a shrink of an
``acked-durability`` failure must still break acked durability), not
by exact detail text — the minimal schedule usually damages a
different record than the full one did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.chaos.nemesis import FaultEvent


@dataclass
class ShrinkResult:
    """Outcome of one shrink: the minimal schedule and its cost."""

    events: list[FaultEvent]
    evaluations: int
    reproduced: bool
    trace: list[tuple[int, bool]] = field(default_factory=list)


def shrink_schedule(
    events: list[FaultEvent],
    reproduces: Callable[[list[FaultEvent]], bool],
    max_evaluations: int = 200,
) -> ShrinkResult:
    """Minimise ``events`` while ``reproduces(subset)`` stays true.

    ``reproduces`` replays the workload with the candidate schedule
    and reports whether the original invariant still breaks (see
    :func:`make_reproducer`).  ``max_evaluations`` caps replay cost;
    hitting the cap returns the best reduction found so far, which is
    still a valid reproducing schedule (just maybe not 1-minimal).
    """
    result = ShrinkResult(events=list(events), evaluations=0,
                          reproduced=False)

    def check(candidate: list[FaultEvent]) -> bool:
        if result.evaluations >= max_evaluations:
            return False
        result.evaluations += 1
        ok = reproduces(candidate)
        result.trace.append((len(candidate), ok))
        return ok

    if not check(result.events):
        # The full schedule does not reproduce (flaky premise): bail
        # out honestly rather than "minimising" noise.
        return result
    result.reproduced = True

    # -- ddmin ---------------------------------------------------------------
    current = result.events
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        reduced = False
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + chunk:]
            if candidate and check(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                start = 0
                continue
            start += chunk
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)

    # -- 1-minimality pass ---------------------------------------------------
    index = 0
    while index < len(current) and len(current) > 1:
        candidate = current[:index] + current[index + 1:]
        if check(candidate):
            current = candidate
        else:
            index += 1

    result.events = current
    return result


def make_reproducer(
    seed: int,
    config,
    invariant: str,
) -> Callable[[list[FaultEvent]], bool]:
    """A ``reproduces`` predicate for :func:`shrink_schedule`: replay
    the seeded workload under the candidate schedule and ask whether
    any violation of ``invariant`` survives."""
    from repro.chaos.runner import run_episode

    def reproduces(candidate: list[FaultEvent]) -> bool:
        report = run_episode(seed, config=config, events=candidate)
        return any(
            violation.invariant == invariant
            for violation in report.violations
        )

    return reproduces
