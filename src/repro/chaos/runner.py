"""One chaos episode: seeded workload + nemesis + oracle battery.

An episode is a pure function of its seed and config:

1. Build the chaos store (LH*_RS record + index files, per the
   paper's §5 high-availability deployment) on a network with a
   zero-rate :class:`~repro.net.faults.FaultModel` (the nemesis
   raises the rates in windows) and a seeded jitter latency model —
   and a *fault-free twin* of the same store on a reliable network.
2. Preload the corpus on both stores, then compose the seeded fault
   schedule over the workload's time span and attach the nemesis.
3. Run the op mix (puts, gets, substring searches, deletes) against
   the chaos store, mirroring every *acknowledged* op onto the twin
   and the client-side model; ops whose retry budget dies under the
   chaos are *uncertain* — excluded from strict comparison, exactly
   like a real client that cannot know whether its timed-out write
   landed.  A deterministic think-time tick between ops walks the
   simulated clock through the whole fault schedule.
4. Quiesce the nemesis (heal partitions, restore crashed nodes,
   restore base rates), drive coordinator probe rounds until no
   bucket stays declared dead, then run the invariant battery of
   :mod:`repro.chaos.invariants`.

The episode report (see OBSERVABILITY.md) is JSONL: one ``episode``
line with config, counters, and violations, followed by the PR-2
tracer's spans for every operation.  No wall clock, no unseeded
randomness — byte-identical output for a given (seed, config,
schedule).
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import asdict, dataclass, field, replace
from typing import IO, Any

from repro.chaos.invariants import (
    LevelMonitor,
    Violation,
    check_durability,
    check_heal_convergence_dead,
    check_migration_integrity,
    check_parity_consistency,
    check_parity_consistency_live,
    check_post_heal_levels,
    check_scan_coverage,
    check_search_agreement,
    check_tombstone_convergence,
    dump_buckets_sim,
)
from repro.chaos.nemesis import (
    FaultEvent,
    Nemesis,
    NemesisProfile,
    compose_schedule,
    register_action,
)
from repro.core import EncryptedSearchableStore, SchemeParameters
from repro.errors import SDDSError
from repro.net.faults import FaultModel, RetryPolicy
from repro.net.simulator import JitterLatencyModel, Network
from repro.obs.trace import Span, Tracer, use_tracer
from repro.sdds.lhstar import HEADER_SIZE

#: Deterministic corpus pool (the paper's SF-directory flavour).
NAME_POOL = [
    "SCHWARZ THOMAS",
    "LITWIN WITOLD",
    "TSUI PETER",
    "ABOGADO ALEJANDRO",
    "MOUSSA RIM",
    "NEIMAT MARIE ANNE",
    "SCHNEIDER DONOVAN",
    "ANDERSON MARGARET",
    "ARMSTRONG STEPHEN",
    "SCHOLTEN HENDRIK",
    "PETERSEN INGRID",
    "WHITACRE ERIC",
    "LINDGREN ASTRID",
    "ARCHER ELIZABETH",
    "THOMPSON SCHOLAR",
    "WINTERBOTTOM ANNE",
    "CHANDRA PETER",
    "NGUYEN THANH",
    "LEUNG WINNIE",
    "MARSHALL ANNE",
    "SCHWINN MARTIN",
    "ARCHIBALD GRETA",
    "PETROV MIKHAIL",
    "WITOLDSON ERIK",
]

#: Search patterns (>= the full(4) layout's minimum query length).
PATTERNS = ["SCHW", "ARCH", "PETER", "ANNE", "WITO", "LITW"]


@dataclass(frozen=True)
class EpisodeConfig:
    """Everything but the seed that shapes an episode."""

    records: int = 16
    ops: int = 60
    bucket_capacity: int = 4
    group_size: int = 4
    parity_count: int = 2
    chunk_size: int = 4
    retry_timeout: float = 0.2
    retry_backoff: float = 2.0
    retry_max: int = 6
    retry_jitter: float = 0.5
    fast_path: bool = True
    #: Shrinking files (delete-driven merges); required for episodes
    #: whose profile schedules elasticity events.
    shrink: bool = False
    #: Load factor below which a shrinking file merges.  Elasticity
    #: episodes raise this (0.6) so the short merge-pressure windows
    #: actually push the file under it.
    merge_threshold: float = 0.4
    profile: NemesisProfile = field(default_factory=NemesisProfile)
    #: ``"simulator"`` (default) or ``"live"`` — the live backend
    #: drives the identical seeded workload and nemesis schedule
    #: through a :class:`~repro.net.live.LiveCluster` of real site
    #: processes; the fault-free twin stays a simulator either way.
    backend: str = "simulator"
    #: Initial site-process count for ``backend="live"`` (splits past
    #: it spawn more on demand).
    live_sites: int = 12
    #: Quiescence deadline per ``run()`` call on the live backend.
    live_run_timeout: float = 30.0
    #: Deliver same-arrival batchable messages as vectorised rounds
    #: (simulator backend).  Billing, fault rolls, and observer
    #: callbacks stay per message, so a report is byte-identical with
    #: the flag on or off — the chaos suite proves it.
    vectorised_rounds: bool = True

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


@dataclass
class EpisodeReport:
    """Outcome of one episode; serialized by :func:`write_report`."""

    seed: int
    config: EpisodeConfig
    events: list[FaultEvent]
    violations: list[Violation]
    nemesis: dict[str, int]
    stats: dict[str, Any]
    ops_applied: int
    ops_failed: int
    uncertain: list[int]
    elapsed: float
    #: Acked rid set after the episode (model minus uncertain) and the
    #: final post-heal search answers per pattern — the cross-backend
    #: comparison surface: the same seed and config must produce the
    #: same values on the simulator and the live cluster.
    acked: list[int] = field(default_factory=list)
    searches: dict[str, list[int]] = field(default_factory=dict)
    spans: list[Span] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def episode_dict(self) -> dict[str, Any]:
        return {
            "type": "episode",
            "seed": self.seed,
            "config": self.config.to_dict(),
            "schedule": [event.to_dict() for event in self.events],
            "nemesis": self.nemesis,
            "stats": self.stats,
            "ops_applied": self.ops_applied,
            "ops_failed": self.ops_failed,
            "uncertain": self.uncertain,
            "elapsed": self.elapsed,
            "acked": self.acked,
            "searches": self.searches,
            "violations": [v.to_dict() for v in self.violations],
        }


def write_report(
    report: EpisodeReport, destination: str | IO[str]
) -> None:
    """Write the JSONL episode report: the episode line, then every
    tracer span (the PR-2 format ``load_jsonl`` understands)."""
    if isinstance(destination, (str, bytes)):
        with open(destination, "w", encoding="utf-8") as handle:
            write_report(report, handle)
        return
    destination.write(json.dumps(report.episode_dict()))
    destination.write("\n")
    for span in report.spans:
        destination.write(json.dumps(span.to_dict()))
        destination.write("\n")


def _build_store(
    config: EpisodeConfig,
    network: Network,
    policy: RetryPolicy,
) -> EncryptedSearchableStore:
    return EncryptedSearchableStore(
        SchemeParameters.full(config.chunk_size),
        network=network,
        bucket_capacity=config.bucket_capacity,
        high_availability=True,
        retry_policy=policy,
        group_size=config.group_size,
        parity_count=config.parity_count,
        fast_path=config.fast_path,
        shrink=config.shrink,
        merge_threshold=config.merge_threshold,
    )


class _SimulatorBackend:
    """Oracle/introspection surface of a simulator episode.

    The traced runner only touches the network through this facade
    wherever simulator and live clusters genuinely differ: reading
    coordinator state, gating nemesis crashes, and checking parity
    consistency.  Everything else (the client API, the nemesis, the
    stats) is already backend-agnostic.
    """

    def refresh(self, store: EncryptedSearchableStore) -> None:
        pass  # node objects are in-process; nothing to fetch

    def state(self, file: Any) -> tuple[int, int]:
        return file.state

    def dead(self, file: Any) -> dict[int, Any]:
        return dict(file.coordinator.dead)

    def make_gate(self, store: EncryptedSearchableStore,
                  config: EpisodeConfig):
        gates = (store.record_file.crash_gate(),
                 store.index_file.crash_gate())
        return lambda node_id: any(gate(node_id) for gate in gates)

    def buckets(self, file: Any) -> dict[int, dict]:
        return dump_buckets_sim(file)

    def parity_violations(self, file: Any) -> list[Violation]:
        return check_parity_consistency(file)


class _LiveBackend:
    """The same surface over a :class:`~repro.net.live.LiveNetwork`.

    Coordinator state comes from unbilled control-plane roundtrips;
    the crash gate works from the state snapshot cached by the last
    ``refresh``/``state`` call (a gate runs inside ``network.run`` and
    must not start nested roundtrips); parity consistency recomputes
    the parity algebra client-side from ``dump``/``dump_parity``.
    """

    def __init__(self, network: Any) -> None:
        self.network = network
        self._states: dict[str, dict] = {}

    def refresh(self, store: EncryptedSearchableStore) -> None:
        for file in (store.record_file, store.index_file):
            self._states[file.name] = (
                self.network.coordinator_state(file.name)
            )

    def state(self, file: Any) -> tuple[int, int]:
        snap = self.network.coordinator_state(file.name)
        self._states[file.name] = snap
        return (snap["i"], snap["n"])

    def dead(self, file: Any) -> dict[int, Any]:
        snap = self.network.coordinator_state(file.name)
        self._states[file.name] = snap
        return {int(address): info
                for address, info in (snap.get("dead") or {}).items()}

    def make_gate(self, store: EncryptedSearchableStore,
                  config: EpisodeConfig):
        group_size = config.group_size
        parity_count = config.parity_count
        names = {store.record_file.name, store.index_file.name}
        network = self.network
        states = self._states

        def gate(node_id: Any) -> bool:
            if not (isinstance(node_id, tuple) and len(node_id) == 3
                    and node_id[0] == "bucket"
                    and node_id[1] in names):
                return False
            name, address = node_id[1], node_id[2]
            snap = states.get(name)
            if snap is None:
                return False
            if address >= (1 << snap["i"]) + snap["n"]:
                return False  # never created
            dead = {int(a) for a in (snap.get("dead") or {})}
            if address in dead:
                return False  # mid-recovery: an independent failure
            base = (address // group_size) * group_size
            down = sum(
                1 for member in range(base, base + group_size)
                if member != address and (
                    member in dead
                    or network.is_crashed(("bucket", name, member))
                )
            )
            return down + 1 <= parity_count

        return gate

    def buckets(self, file: Any) -> dict[int, dict]:
        return self.network.dump_buckets(file.name)

    def parity_violations(self, file: Any) -> list[Violation]:
        return check_parity_consistency_live(self.network, file)


def _converge(store: EncryptedSearchableStore, network: Network,
              backend: Any, rounds: int = 6) -> None:
    """Probe-drive the coordinators until no bucket stays dead.

    After the nemesis quiesces, every node is up again but a
    coordinator may still carry ``dead`` entries (a recovery that
    finished between run calls, or a dead-unrecoverable verdict from
    a probe that raced a restore).  A client ``suspect`` per dead
    address triggers the probe round that clears them; buckets that
    are genuinely mid-recovery complete during the run.
    """
    files = (store.record_file, store.index_file)
    for __ in range(rounds):
        dead = [
            (file, address)
            for file in files
            for address in sorted(backend.dead(file))
        ]
        if not dead:
            return
        for file, address in dead:
            file.client.send(
                file.coordinator_id,
                "suspect",
                {"address": address, "client": file.client.node_id},
                size=HEADER_SIZE,
            )
        network.run()


def run_episode(
    seed: int,
    config: EpisodeConfig | None = None,
    events: list[FaultEvent] | None = None,
) -> EpisodeReport:
    """Run one chaos episode; see the module docstring.

    ``events`` replays an explicit fault schedule (shrinker, CLI
    ``--replay``) instead of composing one from the seed; the
    workload itself is still derived from ``seed`` either way.
    """
    config = config or EpisodeConfig()
    if config.backend == "live":
        return _run_live_episode(seed, config, events)
    if config.backend != "simulator":
        raise ValueError(
            f"unknown episode backend {config.backend!r}"
        )
    policy = _episode_policy(seed, config)
    chaos_net = Network(
        latency=JitterLatencyModel(seed=seed * 2 + 1, jitter=0.002),
        faults=FaultModel(seed=seed * 2 + 2),
        vectorised_rounds=config.vectorised_rounds,
    )
    chaos = _build_store(config, chaos_net, policy)
    twin = _build_store(
        config,
        Network(vectorised_rounds=config.vectorised_rounds),
        RetryPolicy(),
    )

    tracer = Tracer(network=chaos_net, capacity=65536)
    with use_tracer(tracer):
        report = _run_episode_traced(
            seed, config, events, chaos, twin, chaos_net,
            _SimulatorBackend(),
        )
    report.spans = list(tracer.finished)
    return report


def _episode_policy(seed: int, config: EpisodeConfig) -> RetryPolicy:
    return RetryPolicy(
        timeout=config.retry_timeout,
        backoff=config.retry_backoff,
        max_retries=config.retry_max,
        jitter=config.retry_jitter,
        seed=seed,
    )


def _run_live_episode(
    seed: int,
    config: EpisodeConfig,
    events: list[FaultEvent] | None,
) -> EpisodeReport:
    """One chaos episode against real site processes.

    Identical seeded workload and nemesis schedule as the simulator
    path — the fault-free twin stays a simulator, so the acked-set
    and search-answer comparison crosses the backend boundary.
    """
    from repro.net.live import LiveCluster

    policy = _episode_policy(seed, config)
    with LiveCluster(buckets=config.live_sites) as cluster:
        network = cluster.connect(
            run_timeout=config.live_run_timeout
        )
        network.enable_faults(seed=seed * 2 + 2)
        chaos = _build_store(config, network, policy)
        twin = _build_store(config, Network(), RetryPolicy())
        tracer = Tracer(network=network, capacity=65536)
        with use_tracer(tracer):
            report = _run_episode_traced(
                seed, config, events, chaos, twin, network,
                _LiveBackend(network),
            )
        report.spans = list(tracer.finished)
        return report


def _run_episode_traced(
    seed: int,
    config: EpisodeConfig,
    events: list[FaultEvent] | None,
    chaos: EncryptedSearchableStore,
    twin: EncryptedSearchableStore,
    chaos_net: Network,
    backend: Any,
) -> EpisodeReport:
    violations: list[Violation] = []
    model: dict[int, str] = {}
    uncertain: set[int] = set()
    rng = random.Random(seed * 7919 + 13)

    # 1. Preload on a still-calm network (the base state both runs
    # share), then anchor the fault schedule to the clock from here.
    for rid in range(1, config.records + 1):
        text = NAME_POOL[(rid - 1) % len(NAME_POOL)]
        chaos.put(rid, text)
        twin.put(rid, text)
        model[rid] = text

    start = chaos_net.now
    if events is None:
        profile = replace(
            config.profile,
            warmup=start,
            horizon=start + config.profile.horizon,
        )
        crash_targets = [
            chaos.record_file.bucket_id(a) for a in range(16)
        ] + [chaos.index_file.bucket_id(a) for a in range(16)]
        partition_pairs = []
        for file in (chaos.record_file, chaos.index_file):
            buckets = [file.bucket_id(a) for a in range(16)]
            partition_pairs.append(
                ([file.client.node_id], buckets[:8])
            )
            partition_pairs.append(
                ([file.client.node_id], buckets[8:])
            )
        events = compose_schedule(
            seed, profile,
            crash_targets=crash_targets,
            partition_pairs=partition_pairs,
        )

    # Elasticity actions.  Nemesis callbacks fire inside
    # ``network.run`` at backend-specific virtual times — the live
    # cluster's clock advances faster per op than the simulator's
    # (census rounds consume virtual time) — so flag flips driven by
    # the clock would land between *different ops* on the two
    # backends and the op mixes would diverge.  Instead every
    # elasticity event is mapped to the op index whose think-time
    # tick covers its normalized schedule position, identical across
    # backends by construction, and the actions are registered as
    # no-ops so the nemesis still applies/expires them alongside the
    # fault windows.  The op loop effects the mix biases and the
    # membership events (leave, rejoin) between ops, at top level,
    # where starting a migration cannot re-enter the event loop.
    # ``register_action`` replaces prior registrations, so each
    # episode's closures supersede the previous episode's.
    for action in ("merge_pressure", "join", "leave", "rejoin"):
        register_action(action, lambda *__: None, lambda *__: None)

    tick = config.profile.horizon * 1.1 / max(config.ops, 1)

    def _op_of(at: float) -> int:
        """The op whose draw first happens after schedule time ``at``
        (ops past the end collapse onto ``config.ops``: the post-loop
        drain)."""
        return min(config.ops,
                   max(0, math.ceil((at - start) / tick) - 1))

    mix_plan = [[0, 0] for _ in range(config.ops + 1)]
    membership_plan: dict[int, list[str]] = {}
    for event in events:
        if event.action in ("merge_pressure", "join"):
            slot = 0 if event.action == "merge_pressure" else 1
            until = _op_of(event.at + (event.duration or 0.0))
            for op in range(_op_of(event.at), until):
                mix_plan[op][slot] += 1
        elif event.action == "leave":
            membership_plan.setdefault(
                _op_of(event.at), []).append("leave")
        elif event.action == "rejoin":
            membership_plan.setdefault(
                _op_of(event.at), []).append("rejoin_down")
            membership_plan.setdefault(
                _op_of(event.at + (event.duration or 0.0)), []
            ).append("rejoin_up")

    rejoin_down: list[Any] = []

    def _apply_membership(op: int) -> None:
        """Perform the membership events planned for op ``op``."""
        file = chaos.record_file
        for kind in membership_plan.pop(op, ()):
            if kind == "leave":
                i, n = backend.state(file)
                count = (1 << i) + n
                address = count - 1
                if count <= 1 or address in backend.dead(file):
                    continue
                try:
                    file.leave(address)
                except SDDSError:
                    pass  # refused or drowned out; chaos moves on
            elif kind == "rejoin_down":
                dump = backend.buckets(file)
                retired = [a for a, info in dump.items()
                           if info["retired"]]
                if not retired:
                    continue
                node = file.bucket_id(max(retired))
                if chaos_net.is_crashed(node):
                    continue
                chaos_net.crash(node)
                rejoin_down.append(node)
            elif kind == "rejoin_up" and rejoin_down:
                chaos_net.restore(rejoin_down.pop(0))

    nemesis = Nemesis(events)
    backend.refresh(chaos)
    nemesis.gate = backend.make_gate(chaos, config)
    nemesis.attach(chaos_net)

    monitors = (
        LevelMonitor(chaos.record_file.name, shrink=config.shrink),
        LevelMonitor(chaos.index_file.name, shrink=config.shrink),
    )

    # 2. The op mix.  The think-time tick walks the clock across the
    # whole schedule horizon even when every op is fast, so no window
    # silently expires unexercised.
    ops_applied = 0
    ops_failed = 0
    for op_index in range(config.ops):
        chaos_net.schedule(tick, lambda: None)
        chaos_net.run()
        _apply_membership(op_index)
        draw = rng.random()
        rid = rng.randrange(1, config.records + 1)
        deleted = False
        # Elasticity windows bias the op mix: merge-pressure toward
        # deletes (driving underflows and merges), join toward puts
        # (driving splits).  One rng draw either way, so seeds without
        # elasticity windows consume the identical stream.
        merge_pressure, join = mix_plan[op_index]
        if merge_pressure > 0:
            put_cut, get_cut, search_cut = 0.15, 0.35, 0.50
        elif join > 0:
            put_cut, get_cut, search_cut = 0.70, 0.85, 0.95
        else:
            put_cut, get_cut, search_cut = 0.35, 0.65, 0.90
        try:
            if draw < put_cut:
                text = NAME_POOL[rng.randrange(len(NAME_POOL))]
                chaos.put(rid, text)
                twin.put(rid, text)
                model[rid] = text
                uncertain.discard(rid)
            elif draw < get_cut:
                got = chaos.get(rid)
                if rid not in uncertain:
                    expected = model.get(rid)
                    if got != expected:
                        violations.append(Violation(
                            "acked-durability",
                            f"mid-run get({rid}) = {got!r}, acked "
                            f"{expected!r}",
                        ))
            elif draw < search_cut:
                pattern = PATTERNS[rng.randrange(len(PATTERNS))]
                result = chaos.search(pattern)
                violations.extend(check_search_agreement(
                    pattern, result, twin.search(pattern), uncertain
                ))
            else:
                deleted = True
                removed = chaos.delete(rid)
                if removed:
                    twin.delete(rid)
                    model.pop(rid, None)
                    uncertain.discard(rid)
            ops_applied += 1
        except SDDSError:
            # The retry budget died under the chaos.  A failed read
            # changes nothing; a failed write leaves the rid's fate
            # unknown until a later acked op settles it.
            ops_failed += 1
            if draw < put_cut or deleted:
                uncertain.add(rid)
                model.pop(rid, None)
        except RuntimeError as error:
            ops_failed += 1
            name = ("scan-coverage" if "coverage" in str(error)
                    else "runtime-error")
            violations.append(Violation(name, str(error)))
        for monitor, file in zip(
            monitors, (chaos.record_file, chaos.index_file)
        ):
            monitor.observe(backend.state(file), deleted)

    # 3. Heal and settle.  Quiescing closes any still-open elasticity
    # windows, so drain their queued membership events (pending
    # rejoin restores, late leaves) before the convergence rounds.
    nemesis.quiesce(chaos_net)
    _apply_membership(config.ops)
    while rejoin_down:
        chaos_net.restore(rejoin_down.pop(0))
    chaos_net.run()
    _converge(chaos, chaos_net, backend)

    # 4. The oracle battery.
    for monitor in monitors:
        violations.extend(monitor.violations)
    for file in (chaos.record_file, chaos.index_file):
        violations.extend(check_heal_convergence_dead(
            file.name, backend.dead(file)
        ))
    violations.extend(check_durability(chaos, model, uncertain))
    searches: dict[str, list[int]] = {}
    for pattern in PATTERNS:
        try:
            result = chaos.search(pattern)
        except (SDDSError, RuntimeError) as error:
            violations.append(Violation(
                "search-agreement",
                f"final search({pattern!r}) failed after heal: "
                f"{error}",
            ))
            continue
        searches[pattern] = sorted(set(result.matches) - uncertain)
        violations.extend(check_search_agreement(
            pattern, result, twin.search(pattern), uncertain
        ))
    violations.extend(check_scan_coverage(chaos, model, uncertain))
    violations.extend(backend.parity_violations(chaos.record_file))
    violations.extend(backend.parity_violations(chaos.index_file))
    # Elasticity oracles: tombstone forwarding converges, membership
    # events lose/duplicate nothing, levels match the healed (i, n).
    # The record file's rids are the store's rids; the index file's
    # keys are derived (several per rid), so it only gets the
    # duplication half of the migration check.
    for file, acked_rids in (
        (chaos.record_file, set(model)),
        (chaos.index_file, set()),
    ):
        dump = backend.buckets(file)
        violations.extend(
            check_tombstone_convergence(file.name, dump))
        violations.extend(check_migration_integrity(
            file.name, dump, acked_rids, uncertain))
        violations.extend(check_post_heal_levels(
            file.name, backend.state(file), dump))

    stats = chaos_net.stats
    return EpisodeReport(
        seed=seed,
        config=config,
        events=events,
        violations=violations,
        nemesis=nemesis.counters(),
        stats={
            "messages": stats.messages,
            "bytes": stats.bytes,
            "dropped": stats.dropped,
            "duplicated": stats.duplicated,
            "retries": stats.retries,
            "crashed_drops": stats.crashed_drops,
            "partitioned_drops": stats.partitioned_drops,
            "corrupted": stats.corrupted,
            "by_kind": dict(stats.by_kind),
        },
        ops_applied=ops_applied,
        ops_failed=ops_failed,
        uncertain=sorted(uncertain),
        elapsed=chaos_net.now,
        acked=sorted(set(model) - uncertain),
        searches=searches,
    )
