"""Composable, fully seeded fault schedules (the nemesis).

A :class:`Nemesis` owns an ordered list of :class:`FaultEvent` records
and applies them lazily against the workload clock, exactly like the
PR-3 crash schedules: ``Network.run`` consults every entry of
``network.schedules`` before processing each queued event, so faults
land where the traffic's clock has reached — never ahead of it, and
never drained up front by the first run-to-quiescence.

Fault classes (the built-in actions):

``loss`` / ``duplication`` / ``corruption``
    A *window* during which the network's
    :class:`~repro.net.faults.FaultModel` rate for that fault is
    raised to ``params["rate"]``; the base rate is restored when the
    window closes (overlapping windows take the maximum).
``latency``
    A window adding ``params["extra"]`` seconds to every message's
    latency (a congestion spike).
``partition``
    A window severing the links between node groups ``params["a"]``
    and ``params["b"]`` (``params["symmetric"]`` controls direction);
    healed when the window closes.
``crash``
    A window during which node ``params["node"]`` is down, applied
    through a :class:`~repro.net.faults.CrashFaultModel` so the PR-3
    gating and restore-suppression semantics are reused verbatim: a
    vetoed crash (``Nemesis.gate``) also suppresses the restore.

``merge_pressure`` / ``join`` / ``leave`` / ``rejoin``
    Elasticity (membership) events, registered per episode by the
    chaos runner: op-mix windows biased toward deletes or puts, an
    instantaneous graceful site departure, and a crash+restore window
    of a previously retired address.

Custom actions register through :func:`register_action` — chaos tests
use this to inject *sabotage* events (deliberate invariant breakage)
that exercise the shrinker.

Events are plain JSON (node ids serialize as nested lists and are
re-tuplified on load), so a failing schedule round-trips through
:func:`dump_schedule` / :func:`load_schedule` for replay.
"""

from __future__ import annotations

import heapq
import json
import random
from dataclasses import dataclass, field
from typing import IO, Any, Callable, Hashable

from repro.net.faults import CrashFaultModel
from repro.net.simulator import LatencyModel, Network

SCHEDULE_VERSION = 1


def _plain(value: Any) -> Any:
    """JSON-encodable view of a params value (tuples become lists)."""
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    if isinstance(value, dict):
        return {key: _plain(item) for key, item in value.items()}
    return value


def _tuplify(value: Any) -> Any:
    """Undo :func:`_plain`: nested lists back to (hashable) tuples.

    Node ids are tuples (``("bucket", name, addr)``); JSON turns them
    into lists, and this turns them back, so a schedule loaded from
    disk behaves identically to the one that was dumped.
    """
    if isinstance(value, list):
        return tuple(_tuplify(item) for item in value)
    return value


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: an action applied at ``at`` for
    ``duration`` simulated seconds (0 = instantaneous)."""

    at: float
    action: str
    duration: float = 0.0
    params: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "at": self.at,
            "action": self.action,
            "duration": self.duration,
            "params": _plain(self.params),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultEvent":
        return cls(
            at=float(data["at"]),
            action=str(data["action"]),
            duration=float(data.get("duration", 0.0)),
            params=dict(data.get("params", {})),
        )


# -- action registry ----------------------------------------------------------

#: action name -> (on_open, on_close).  ``on_open(nemesis, network,
#: event)`` runs at ``event.at``; ``on_close`` at ``event.at +
#: event.duration`` (and from :meth:`Nemesis.quiesce` for windows
#: still active at episode end).  ``on_close`` may be ``None`` for
#: instantaneous actions.
ACTIONS: dict[
    str,
    tuple[
        Callable[["Nemesis", Network, FaultEvent], None],
        Callable[["Nemesis", Network, FaultEvent], None] | None,
    ],
] = {}


def register_action(
    name: str,
    on_open: Callable[["Nemesis", Network, FaultEvent], None],
    on_close: Callable[["Nemesis", Network, FaultEvent], None] | None = None,
) -> None:
    """Register a (possibly custom) nemesis action.

    Chaos tests register deliberate invariant-breaking actions here so
    the whole catch-and-shrink pipeline can be exercised end to end.
    Re-registering a name replaces it.
    """
    ACTIONS[name] = (on_open, on_close)


def _open_rate(nemesis: "Nemesis", network: Network,
               event: FaultEvent) -> None:
    nemesis._refresh_rates(network)


def _close_rate(nemesis: "Nemesis", network: Network,
                event: FaultEvent) -> None:
    nemesis._refresh_rates(network)


def _partition_groups(
    event: FaultEvent,
) -> tuple[list[Hashable], list[Hashable]]:
    # Schedule convention: ``a``/``b`` are *lists of node ids* (ids
    # themselves being tuples, serialized as nested lists).  Tuplify
    # each element, never the outer list — a tuple would read as one
    # giant node id to ``Network._as_group``.
    return (
        [_tuplify(item) for item in event.params["a"]],
        [_tuplify(item) for item in event.params["b"]],
    )


def _open_partition(nemesis: "Nemesis", network: Network,
                    event: FaultEvent) -> None:
    a, b = _partition_groups(event)
    network.partition(
        a, b, symmetric=event.params.get("symmetric", True)
    )


def _close_partition(nemesis: "Nemesis", network: Network,
                     event: FaultEvent) -> None:
    a, b = _partition_groups(event)
    network.heal(
        a, b, symmetric=event.params.get("symmetric", True)
    )


def _open_crash(nemesis: "Nemesis", network: Network,
                event: FaultEvent) -> None:
    node = _tuplify(event.params["node"])
    nemesis._crashes.schedule_crash(network.now, node)
    nemesis._crashes.advance(network, network.now)


def _close_crash(nemesis: "Nemesis", network: Network,
                 event: FaultEvent) -> None:
    node = _tuplify(event.params["node"])
    nemesis._crashes.schedule_restore(network.now, node)
    nemesis._crashes.advance(network, network.now)


register_action("loss", _open_rate, _close_rate)
register_action("duplication", _open_rate, _close_rate)
register_action("corruption", _open_rate, _close_rate)
register_action("latency", _open_rate, _close_rate)
register_action("partition", _open_partition, _close_partition)
register_action("crash", _open_crash, _close_crash)


class _SpikedLatency(LatencyModel):
    """The base latency model plus a constant congestion surcharge."""

    def __init__(self, base: LatencyModel, extra: float) -> None:
        object.__setattr__(self, "fixed", base.fixed)
        object.__setattr__(
            self, "bandwidth_bytes_per_s", base.bandwidth_bytes_per_s
        )
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "extra", extra)

    def latency(self, size: int) -> float:
        return self.base.latency(size) + self.extra


class Nemesis:
    """Applies a :class:`FaultEvent` schedule against a network.

    Construct with an explicit event list (as the shrinker does) or
    from :func:`compose_schedule`'s seeded composition; then
    :meth:`attach` to the network *before* the workload runs.  The
    network's own ``FaultModel`` supplies the base rates (usually all
    zero) that window closes restore.

    ``gate`` is consulted for every crash event (see
    :meth:`~repro.sdds.lhstar_rs.LHStarRSFile.crash_gate`): a vetoed
    crash counts as skipped and suppresses its restore — the
    :class:`~repro.net.faults.CrashFaultModel` semantics, reused
    through an internal instance.
    """

    def __init__(self, events: list[FaultEvent]) -> None:
        self.events = sorted(events, key=lambda e: e.at)
        self._cursor = 0
        #: Active windows: token -> event, plus a (close-time, token)
        #: heap so opens and closes interleave in time order.
        self._active: dict[int, FaultEvent] = {}
        self._ends: list[tuple[float, int]] = []
        self._token = 0
        self._crashes = CrashFaultModel(seed=0)
        self._base_rates: tuple[float, float, float] | None = None
        self._base_latency: LatencyModel | None = None
        self._network: Network | None = None
        self.applied = 0
        self.expired = 0

    # -- gate / counters ------------------------------------------------------

    @property
    def gate(self) -> Callable[[Hashable], bool] | None:
        return self._crashes.gate

    @gate.setter
    def gate(self, gate: Callable[[Hashable], bool] | None) -> None:
        self._crashes.gate = gate

    @property
    def crashes(self) -> int:
        return self._crashes.crashes

    @property
    def restores(self) -> int:
        return self._crashes.restores

    @property
    def skipped_crashes(self) -> int:
        return self._crashes.skipped

    def counters(self) -> dict[str, int]:
        return {
            "events": len(self.events),
            "applied": self.applied,
            "expired": self.expired,
            "crashes": self.crashes,
            "restores": self.restores,
            "skipped_crashes": self.skipped_crashes,
        }

    # -- lifecycle ------------------------------------------------------------

    def attach(self, network: Network) -> "Nemesis":
        """Record base rates/latency and hook into ``network.run``."""
        if network.faults is None:
            raise ValueError(
                "a Nemesis needs a FaultModel on the network: its "
                "rate windows modulate the model's rates"
            )
        self._network = network
        faults = network.faults
        self._base_rates = (
            faults.loss_rate,
            faults.duplication_rate,
            faults.corruption_rate,
        )
        self._base_latency = network.latency
        network.schedules.append(self)
        return self

    def advance(self, network: Network, until: float) -> None:
        """Apply every open/close transition with time <= ``until``.

        Called by ``Network.run`` before each queued event, exactly
        like ``CrashFaultModel.advance`` — the schedule tracks the
        workload clock.
        """
        while True:
            next_open = (
                self.events[self._cursor].at
                if self._cursor < len(self.events) else float("inf")
            )
            next_close = (
                self._ends[0][0] if self._ends else float("inf")
            )
            when = min(next_open, next_close)
            if when > until:
                return
            if next_close <= next_open:
                __, token = heapq.heappop(self._ends)
                self._close(network, token)
            else:
                event = self.events[self._cursor]
                self._cursor += 1
                self._open(network, event)

    def quiesce(self, network: Network) -> None:
        """End the chaos: expire pending events, close every active
        window (healing partitions, restoring rates/latency and
        crashed nodes) and clear any stray partition.

        After ``quiesce`` plus a run-to-quiescence the network is
        fault-free again — the state the heal-phase invariants check.
        """
        self.expired += len(self.events) - self._cursor
        self._cursor = len(self.events)
        while self._ends:
            __, token = heapq.heappop(self._ends)
            self._close(network, token)
        # Belt and braces: restore anything a lost close would leave.
        network.heal()
        self._refresh_rates(network)

    # -- internals ------------------------------------------------------------

    def _open(self, network: Network, event: FaultEvent) -> None:
        try:
            on_open, on_close = ACTIONS[event.action]
        except KeyError:
            raise ValueError(
                f"unknown nemesis action {event.action!r}"
            ) from None
        self.applied += 1
        if event.duration > 0 and on_close is not None:
            token = self._token
            self._token += 1
            self._active[token] = event
            heapq.heappush(
                self._ends, (event.at + event.duration, token)
            )
        on_open(self, network, event)

    def _close(self, network: Network, token: int) -> None:
        event = self._active.pop(token)
        on_close = ACTIONS[event.action][1]
        if on_close is not None:
            on_close(self, network, event)

    def _refresh_rates(self, network: Network) -> None:
        """Recompute effective fault rates and latency from the base
        values and the currently active windows (max composition)."""
        if self._base_rates is None:
            return
        loss, duplication, corruption = self._base_rates
        extra = 0.0
        for event in self._active.values():
            rate = event.params.get("rate", 0.0)
            if event.action == "loss":
                loss = max(loss, rate)
            elif event.action == "duplication":
                duplication = max(duplication, rate)
            elif event.action == "corruption":
                corruption = max(corruption, rate)
            elif event.action == "latency":
                extra = max(extra, event.params.get("extra", 0.0))
        faults = network.faults
        faults.loss_rate = loss
        faults.duplication_rate = duplication
        faults.corruption_rate = corruption
        base_latency = self._base_latency or network.latency
        network.latency = (
            base_latency if extra == 0.0
            else _SpikedLatency(base_latency, extra)
        )


# -- seeded composition -------------------------------------------------------


@dataclass(frozen=True)
class NemesisProfile:
    """Intensity knobs for :func:`compose_schedule`.

    Each fault class contributes ``*_windows`` windows (0 disables the
    class) at the given peak rate/magnitude; window start times are
    uniform over ``[warmup, horizon]`` and durations exponential with
    mean ``window``.  Everything is drawn from one seeded stream, so a
    (seed, profile) pair is a complete, reproducible description of
    the chaos.
    """

    loss_rate: float = 0.25
    loss_windows: int = 2
    duplication_rate: float = 0.2
    duplication_windows: int = 2
    corruption_rate: float = 0.25
    corruption_windows: int = 2
    latency_extra: float = 0.02
    latency_windows: int = 1
    partition_windows: int = 2
    crash_windows: int = 2
    #: Elasticity events (all off by default so existing seeds and
    #: their baselines are unchanged).  The runner registers the
    #: matching actions per episode: ``merge_pressure`` and ``join``
    #: are windows biasing the op mix toward deletes / puts,
    #: ``leave`` is an instantaneous graceful departure, ``rejoin``
    #: is a crash+restore window of a previously retired address.
    merge_pressure_windows: int = 0
    join_windows: int = 0
    leave_events: int = 0
    rejoin_windows: int = 0
    window: float = 1.5
    warmup: float = 0.0
    horizon: float = 40.0


def compose_schedule(
    seed: int,
    profile: NemesisProfile,
    crash_targets: list[Hashable] | None = None,
    partition_pairs: list[tuple[Any, Any]] | None = None,
) -> list[FaultEvent]:
    """Draw a composed fault schedule from ``seed`` and ``profile``.

    ``crash_targets`` are the node ids crash windows may hit (the
    caller passes data-bucket ids; the nemesis gate still vetoes
    unsafe ones at apply time).  ``partition_pairs`` are the
    ``(group_a, group_b)`` link sets partition windows may sever,
    each group a *list of node ids* —
    the caller chooses pairs whose traffic the client retry path
    covers (client↔bucket links, never coordinator or
    bucket↔bucket links, whose protocols assume reliable transport).
    """
    rng = random.Random(seed)
    events: list[FaultEvent] = []

    def windows(count: int, action: str, params: dict[str, Any]) -> None:
        for __ in range(count):
            at = profile.warmup + rng.random() * (
                profile.horizon - profile.warmup
            )
            duration = rng.expovariate(1.0 / profile.window)
            events.append(FaultEvent(
                at=at, action=action, duration=duration,
                params=dict(params),
            ))

    if profile.loss_rate > 0:
        windows(profile.loss_windows, "loss",
                {"rate": profile.loss_rate})
    if profile.duplication_rate > 0:
        windows(profile.duplication_windows, "duplication",
                {"rate": profile.duplication_rate})
    if profile.corruption_rate > 0:
        windows(profile.corruption_windows, "corruption",
                {"rate": profile.corruption_rate})
    if profile.latency_extra > 0:
        windows(profile.latency_windows, "latency",
                {"extra": profile.latency_extra})
    if partition_pairs:
        for __ in range(profile.partition_windows):
            a, b = partition_pairs[
                rng.randrange(len(partition_pairs))
            ]
            windows(1, "partition", {
                "a": _plain(list(a)),
                "b": _plain(list(b)),
                "symmetric": rng.random() < 0.5,
            })
    if crash_targets:
        for __ in range(profile.crash_windows):
            node = crash_targets[rng.randrange(len(crash_targets))]
            windows(1, "crash", {"node": _plain(node)})
    windows(profile.merge_pressure_windows, "merge_pressure", {})
    windows(profile.join_windows, "join", {})
    for __ in range(profile.leave_events):
        at = profile.warmup + rng.random() * (
            profile.horizon - profile.warmup
        )
        events.append(FaultEvent(at=at, action="leave"))
    windows(profile.rejoin_windows, "rejoin", {})
    events.sort(key=lambda e: (e.at, e.action))
    return events


# -- serialization ------------------------------------------------------------


def dump_schedule(
    events: list[FaultEvent], destination: str | IO[str]
) -> None:
    """Write a schedule as JSON for replay (see PROTOCOLS.md §10)."""
    data = {
        "version": SCHEDULE_VERSION,
        "events": [event.to_dict() for event in events],
    }
    if isinstance(destination, (str, bytes)):
        with open(destination, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=2)
            handle.write("\n")
        return
    json.dump(data, destination, indent=2)
    destination.write("\n")


def load_schedule(source: str | IO[str]) -> list[FaultEvent]:
    """Read a schedule back; inverse of :func:`dump_schedule`."""
    if isinstance(source, (str, bytes)):
        with open(source, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    else:
        data = json.load(source)
    if data.get("version") != SCHEDULE_VERSION:
        raise ValueError(
            f"unsupported schedule version {data.get('version')!r}"
        )
    return [FaultEvent.from_dict(item) for item in data["events"]]
