"""Invariant oracles: the faulted store versus a fault-free twin.

The chaos runner executes one seeded workload twice — once on a
network the nemesis is torturing, once on a perfectly reliable twin —
and these oracles assert that the only admissible differences are the
ones the paper documents (search false positives) or the ones the
fault model forces (operations whose retry budget died, tracked as
*uncertain*).  Checked after the nemesis quiesces and the file heals:

* **acked durability** — every acknowledged insert is retrievable
  and decrypts to the acknowledged text.
* **search agreement** — verified matches agree with the twin's,
  modulo uncertain rids; recall is preserved (every twin match is at
  least a candidate — the scheme's 100 % recall guarantee).
* **scan coverage** — a full record-store scan covers exactly the
  acked rids (plus possibly uncertain ones), and every scan
  terminates with its coverage fractions summing to 1 (enforced by
  ``take_scan``; surfacing here as a violation, not a crash).
* **monotone file level** — the coordinator's ``(i, n)`` state never
  steps backwards except through a legitimate delete-driven merge.
* **parity consistency** — for LH*_RS files, every live bucket is
  bit-for-bit reconstructible from its parity group
  (``verify_recovery``).
* **heal convergence** — after the nemesis quiesces, no bucket stays
  declared dead (recovery completed and probes cleared the rest).
* **tombstone convergence** — every retired bucket is empty and its
  merge-target forwarding chain reaches a live bucket (membership
  events leave no dangling redirects).
* **migration integrity** — across merges, leaves and rejoins no
  record is lost or duplicated: each acked rid sits in exactly one
  live bucket.
* **post-heal levels** — once healed, every live bucket's level
  matches the LH* addressing formula for the coordinator's final
  ``(i, n)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import BucketUnavailableError, SDDSError


@dataclass(frozen=True)
class Violation:
    """One invariant breach: which oracle, and what it saw."""

    invariant: str
    detail: str

    def to_dict(self) -> dict[str, Any]:
        return {"invariant": self.invariant, "detail": self.detail}


def check_durability(
    store: Any, model: dict[int, str], uncertain: set[int]
) -> list[Violation]:
    """Every acked insert must read back as the acked text."""
    violations = []
    for rid in sorted(model):
        if rid in uncertain:
            continue
        try:
            text = store.get(rid)
        except SDDSError as error:
            violations.append(Violation(
                "acked-durability",
                f"get({rid}) failed after heal: {error}",
            ))
            continue
        if text != model[rid]:
            violations.append(Violation(
                "acked-durability",
                f"get({rid}) = {text!r}, acked {model[rid]!r}",
            ))
    return violations


def check_search_agreement(
    pattern: str,
    chaos_result: Any,
    twin_result: Any,
    uncertain: set[int],
) -> list[Violation]:
    """Verified matches agree modulo uncertainty; recall holds.

    Candidate sets may legitimately differ (the scheme's documented
    false positives are corpus-dependent, and uncertain rids may be
    half-indexed), but after client-side verification the match sets
    must be identical outside the uncertain rids — and every certain
    twin match must at least have been a chaos candidate, or the scan
    round lost a record (recall breach).
    """
    violations = []
    chaos_matches = set(chaos_result.matches) - uncertain
    twin_matches = set(twin_result.matches) - uncertain
    if chaos_matches != twin_matches:
        violations.append(Violation(
            "search-agreement",
            f"search({pattern!r}) matches "
            f"{sorted(chaos_matches)} != twin "
            f"{sorted(twin_matches)}",
        ))
    missing = twin_matches - set(chaos_result.candidates)
    if missing:
        violations.append(Violation(
            "search-agreement",
            f"search({pattern!r}) lost recall: twin matches "
            f"{sorted(missing)} never became candidates",
        ))
    return violations


def check_scan_coverage(
    store: Any, model: dict[int, str], uncertain: set[int]
) -> list[Violation]:
    """A full record-store scan sees the acked rids, nothing else.

    ``take_scan`` has already enforced that coverage fractions summed
    to exactly 1 (raising ``RuntimeError`` otherwise — reported by the
    caller as a scan-coverage violation); this checks the scan's
    *content* against the acked model.
    """
    from repro.sdds.lhstar import RidScanMatcher

    try:
        scanned = set(store.record_file.scan(RidScanMatcher()))
    except SDDSError as error:
        return [Violation(
            "scan-coverage", f"record scan failed after heal: {error}"
        )]
    except RuntimeError as error:
        return [Violation("scan-coverage", str(error))]
    acked = set(model) - uncertain
    lost = acked - scanned
    ghosts = scanned - set(model) - uncertain
    violations = []
    if lost:
        violations.append(Violation(
            "scan-coverage",
            f"scan missed acked rids {sorted(lost)}",
        ))
    if ghosts:
        violations.append(Violation(
            "scan-coverage",
            f"scan saw rids never acked: {sorted(ghosts)}",
        ))
    return violations


class LevelMonitor:
    """Tracks the coordinator's ``(i, n)`` state across the workload.

    The LH* file level only grows under inserts.  Without shrink it
    never steps back at all.  With shrink it steps back through
    merges, which only delete-driven underflows make possible — but
    the step lands asynchronously (underflows ride the network, and a
    merge skipped for a dead bucket is re-attempted when liveness
    changes), so after the first delete any decrease is legal.
    The runner feeds one ``observe`` per operation.
    """

    def __init__(self, name: str, shrink: bool = False) -> None:
        self.name = name
        self.shrink = shrink
        self._last: tuple[int, int] | None = None
        self._deleted_ever = False
        self.violations: list[Violation] = []

    def observe(self, state: tuple[int, int], deleted: bool) -> None:
        if deleted:
            self._deleted_ever = True
        if (
            self._last is not None
            and state < self._last
            and not (self.shrink and self._deleted_ever)
        ):
            self.violations.append(Violation(
                "monotone-level",
                f"{self.name} state {state} < {self._last} "
                + ("with no delete yet" if self.shrink
                   else "on a non-shrinking file"),
            ))
        self._last = state


def check_parity_consistency(file: Any) -> list[Violation]:
    """Every live LH*_RS bucket reconstructs bit-for-bit from parity."""
    if not hasattr(file, "verify_recovery"):
        return []
    violations = []
    for address in sorted(file.buckets):
        bucket = file.buckets[address]
        if bucket is None or bucket.retired or bucket.pending:
            continue
        try:
            ok = file.verify_recovery([address])
        except BucketUnavailableError as error:
            violations.append(Violation(
                "parity-consistency",
                f"{file.name} bucket {address}: {error}",
            ))
            continue
        if not ok:
            violations.append(Violation(
                "parity-consistency",
                f"{file.name} bucket {address} does not reconstruct "
                "from its parity group",
            ))
    return violations


def check_heal_convergence(file: Any) -> list[Violation]:
    """After quiesce + probe rounds no bucket may stay declared dead."""
    return check_heal_convergence_dead(
        file.name, file.coordinator.dead
    )


def check_heal_convergence_dead(
    name: str, dead: dict[int, Any] | set[int]
) -> list[Violation]:
    """Backend-agnostic core of :func:`check_heal_convergence`: the
    live runner feeds the coordinator's ``dead`` map fetched over the
    control plane instead of reading the node object directly."""
    remaining = sorted(dead)
    if not remaining:
        return []
    return [Violation(
        "heal-convergence",
        f"{name} still has dead buckets {remaining} after heal",
    )]


def dump_buckets_sim(file: Any) -> dict[int, dict]:
    """Snapshot a simulator file's buckets in the shape of
    ``LiveNetwork.dump_buckets`` so the elasticity oracles below run
    identically on both backends."""
    return {
        address: {
            "level": bucket.level,
            "retired": bucket.retired,
            "merge_target": bucket.merge_target,
            "pending": bucket.pending,
            "records": sorted(bucket.records.values(),
                              key=lambda r: r.rid),
        }
        for address, bucket in file.buckets.items()
    }


def check_tombstone_convergence(
    name: str, buckets: dict[int, dict]
) -> list[Violation]:
    """Every retired bucket is an empty tombstone whose merge-target
    chain reaches a live bucket in finitely many hops — a stale
    client image redirected through it always lands somewhere that
    answers."""
    violations = []
    for address in sorted(buckets):
        info = buckets[address]
        if not info["retired"]:
            continue
        if info["records"]:
            violations.append(Violation(
                "tombstone-convergence",
                f"{name} tombstone {address} still holds rids "
                f"{sorted(r.rid for r in info['records'])}",
            ))
        target = info["merge_target"]
        seen = {address}
        while target is not None:
            if target in seen or target not in buckets:
                violations.append(Violation(
                    "tombstone-convergence",
                    f"{name} tombstone {address} forwards to "
                    f"{target}, which is "
                    + ("a redirect cycle" if target in seen
                       else "not a known bucket"),
                ))
                break
            seen.add(target)
            follow = buckets[target]
            if not follow["retired"]:
                break
            target = follow["merge_target"]
        else:
            violations.append(Violation(
                "tombstone-convergence",
                f"{name} tombstone {address} has no merge target",
            ))
    return violations


def check_migration_integrity(
    name: str, buckets: dict[int, dict],
    acked: set[int], uncertain: set[int],
) -> list[Violation]:
    """No record lost or duplicated across membership events.

    Reads the raw bucket dumps (not the keyed/scan paths, which have
    their own oracles): every certainly acked rid must sit in exactly
    one live bucket, and no rid — acked or not — may sit in more than
    one.
    """
    holders: dict[int, list[int]] = {}
    for address in sorted(buckets):
        info = buckets[address]
        if info["pending"]:
            continue
        for record in info["records"]:
            holders.setdefault(record.rid, []).append(address)
    violations = []
    for rid in sorted(holders):
        if len(holders[rid]) > 1:
            violations.append(Violation(
                "migration-integrity",
                f"{name} rid {rid} duplicated across buckets "
                f"{holders[rid]}",
            ))
    lost = sorted(rid for rid in acked - uncertain
                  if rid not in holders)
    if lost:
        violations.append(Violation(
            "migration-integrity",
            f"{name} lost acked rids {lost} from every bucket",
        ))
    return violations


def check_post_heal_levels(
    name: str, state: tuple[int, int], buckets: dict[int, dict]
) -> list[Violation]:
    """After heal, live buckets carry the level LH* addressing
    dictates for the final ``(i, n)`` — merges dropped the level back
    exactly where membership says it belongs."""
    from repro.sdds.lhstar import bucket_level

    i, n = state
    count = (1 << i) + n
    violations = []
    for address in sorted(buckets):
        info = buckets[address]
        if info["retired"] or info["pending"]:
            continue
        if address >= count:
            violations.append(Violation(
                "post-heal-levels",
                f"{name} bucket {address} is live beyond the file "
                f"extent {count}",
            ))
            continue
        expected = bucket_level(address, i, n)
        if info["level"] != expected:
            violations.append(Violation(
                "post-heal-levels",
                f"{name} bucket {address} at level {info['level']}, "
                f"addressing demands {expected} for (i={i}, n={n})",
            ))
    return violations


def check_parity_consistency_live(
    network: Any, file: Any
) -> list[Violation]:
    """Live-backend parity oracle: recompute every parity slot.

    The simulator oracle calls ``verify_recovery`` on in-process
    nodes; on the live backend buckets and parity live in other
    processes, so this instead pulls the raw state over the control
    plane (``dump``/``dump_parity``) and checks the parity algebra
    client-side: every live record must hold a rank in the group's
    parity tables, and every slot payload must equal the
    generator-weighted XOR of its contributors' current contents.
    """
    if not hasattr(file, "parity_count"):
        return []
    from repro.sdds.lhstar_rs import _scale, _xor, generator_matrix

    group_size = file.group_size
    generator = generator_matrix(group_size, file.parity_count)
    buckets = network.dump_buckets(file.name)
    slots = network.dump_parity(file.name)
    violations: list[Violation] = []
    live = {
        address: info for address, info in buckets.items()
        if not info["retired"] and not info["pending"]
    }
    for group in sorted({address // group_size for address in live}):
        base = group * group_size
        contents: dict[int, dict[int, bytes]] = {}
        for offset in range(group_size):
            info = live.get(base + offset)
            if info is not None:
                contents[offset] = {
                    record.rid: record.content
                    for record in info["records"]
                }
        # Coverage: every live record owes a parity contribution.
        covered: dict[int, set[int]] = {
            offset: set() for offset in range(group_size)
        }
        for slot in (slots.get((group, 0)) or {}).values():
            for offset, rid in enumerate(slot["rids"]):
                if rid is not None:
                    covered[offset].add(rid)
        for offset, table in contents.items():
            missing = set(table) - covered[offset]
            if missing:
                violations.append(Violation(
                    "parity-consistency",
                    f"{file.name} bucket {base + offset}: rids "
                    f"{sorted(missing)} have no parity contribution",
                ))
        # Algebra: each slot payload reconstructs from the dumps.
        for index in range(file.parity_count):
            for rank, slot in (slots.get((group, index)) or {}).items():
                expected = b""
                broken = False
                for offset, rid in enumerate(slot["rids"]):
                    if rid is None:
                        continue
                    content = contents.get(offset, {}).get(rid)
                    if content is None:
                        violations.append(Violation(
                            "parity-consistency",
                            f"{file.name} parity ({group},{index}) "
                            f"rank {rank}: contributor rid {rid} not "
                            f"held by bucket {base + offset}",
                        ))
                        broken = True
                        break
                    expected = _xor(expected, _scale(
                        generator.rows[index][offset], content
                    ))
                if broken:
                    continue
                if (expected.rstrip(b"\x00")
                        != slot["payload"].rstrip(b"\x00")):
                    violations.append(Violation(
                        "parity-consistency",
                        f"{file.name} parity ({group},{index}) rank "
                        f"{rank} does not match its group contents",
                    ))
    return violations
