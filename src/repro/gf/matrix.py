"""Dense linear algebra over GF(2^g).

The Stage-3 dispersion of the paper multiplies each chunk, viewed as a
row vector ``c`` of ``k`` field elements, by an invertible ``k x k``
matrix ``E``:  ``d = c . E``.  "A good E seems to be one where all
coefficients are nonzero ... such matrices exist in abundance, e.g. as
Cauchy matrices or Vandermonde matrices."  This module provides the
matrix type, the two constructors, and the random non-singular matrices
used in the paper's Table-2 experiment.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.gf.field import GF2


class Matrix:
    """An immutable matrix over a :class:`~repro.gf.field.GF2` field.

    Rows are stored as tuples of ints.  The class supports the small
    set of operations the dispersion codec and the LH*_RS parity
    calculus need: multiplication, inversion, rank, determinant and
    row/column access.

    >>> f = GF2(4)
    >>> m = Matrix(f, [[1, 2], [3, 4]])
    >>> (m @ m.inverse()) == identity_matrix(f, 2)
    True
    """

    __slots__ = ("field", "rows", "nrows", "ncols")

    def __init__(self, field: GF2, rows: Iterable[Sequence[int]]) -> None:
        self.field = field
        materialised = tuple(tuple(field.validate(v) for v in row)
                             for row in rows)
        if not materialised:
            raise ValueError("matrix must have at least one row")
        width = len(materialised[0])
        if width == 0:
            raise ValueError("matrix must have at least one column")
        if any(len(row) != width for row in materialised):
            raise ValueError("all matrix rows must have equal length")
        self.rows = materialised
        self.nrows = len(materialised)
        self.ncols = width

    # -- construction helpers ----------------------------------------------

    def row(self, i: int) -> tuple[int, ...]:
        return self.rows[i]

    def column(self, j: int) -> tuple[int, ...]:
        return tuple(row[j] for row in self.rows)

    def transpose(self) -> "Matrix":
        return Matrix(self.field, zip(*self.rows))

    # -- algebra -------------------------------------------------------------

    def __matmul__(self, other: "Matrix") -> "Matrix":
        if self.field is not other.field:
            raise ValueError("matrices live in different fields")
        if self.ncols != other.nrows:
            raise ValueError(
                f"shape mismatch: {self.nrows}x{self.ncols} @ "
                f"{other.nrows}x{other.ncols}"
            )
        f = self.field
        cols = [other.column(j) for j in range(other.ncols)]
        return Matrix(
            f,
            [[f.dot(row, col) for col in cols] for row in self.rows],
        )

    def mul_vector(self, vector: Sequence[int]) -> tuple[int, ...]:
        """Row-vector times matrix: ``vector . self`` (paper's d = c.E)."""
        if len(vector) != self.nrows:
            raise ValueError(
                f"vector of length {len(vector)} times "
                f"{self.nrows}x{self.ncols} matrix"
            )
        f = self.field
        return tuple(
            f.dot(vector, self.column(j)) for j in range(self.ncols)
        )

    def _eliminate(self) -> tuple[list[list[int]], list[list[int]], int, int]:
        """Gauss-Jordan; returns (reduced, companion-identity, rank, det)."""
        f = self.field
        work = [list(row) for row in self.rows]
        companion = [
            [1 if i == j else 0 for j in range(self.nrows)]
            for i in range(self.nrows)
        ]
        rank = 0
        det = 1
        for col in range(min(self.nrows, self.ncols)):
            pivot_row = next(
                (r for r in range(rank, self.nrows) if work[r][col]), None
            )
            if pivot_row is None:
                det = 0
                continue
            if pivot_row != rank:
                work[rank], work[pivot_row] = work[pivot_row], work[rank]
                companion[rank], companion[pivot_row] = (
                    companion[pivot_row], companion[rank]
                )
                # Row swaps negate the determinant; in characteristic 2
                # negation is the identity, so det is unchanged.
            pivot = work[rank][col]
            det = f.mul(det, pivot)
            pivot_inv = f.inv(pivot)
            work[rank] = [f.mul(v, pivot_inv) for v in work[rank]]
            companion[rank] = [f.mul(v, pivot_inv) for v in companion[rank]]
            for r in range(self.nrows):
                if r != rank and work[r][col]:
                    factor = work[r][col]
                    work[r] = [
                        v ^ f.mul(factor, p)
                        for v, p in zip(work[r], work[rank])
                    ]
                    companion[r] = [
                        v ^ f.mul(factor, p)
                        for v, p in zip(companion[r], companion[rank])
                    ]
            rank += 1
        return work, companion, rank, det

    def rank(self) -> int:
        return self._eliminate()[2]

    def determinant(self) -> int:
        if self.nrows != self.ncols:
            raise ValueError("determinant of a non-square matrix")
        return self._eliminate()[3]

    def is_invertible(self) -> bool:
        return self.nrows == self.ncols and self.rank() == self.nrows

    def inverse(self) -> "Matrix":
        if self.nrows != self.ncols:
            raise ValueError("inverse of a non-square matrix")
        __, companion, rank, __ = self._eliminate()
        if rank != self.nrows:
            raise ValueError("matrix is singular")
        return Matrix(self.field, companion)

    def all_nonzero(self) -> bool:
        """True if every coefficient is nonzero (the paper's 'good E')."""
        return all(all(row) for row in self.rows)

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Matrix):
            return NotImplemented
        return self.field is other.field and self.rows == other.rows

    def __hash__(self) -> int:
        return hash((id(self.field), self.rows))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = "; ".join(" ".join(str(v) for v in row) for row in self.rows)
        return f"Matrix(GF(2^{self.field.degree}), [{body}])"


def identity_matrix(field: GF2, n: int) -> Matrix:
    """The n x n identity over ``field``."""
    return Matrix(
        field, [[1 if i == j else 0 for j in range(n)] for i in range(n)]
    )


def cauchy_matrix(field: GF2, xs: Sequence[int], ys: Sequence[int]) -> Matrix:
    """Cauchy matrix ``C[i][j] = 1 / (x_i + y_j)``.

    Requires the ``x_i`` and ``y_j`` to be pairwise distinct across both
    sequences; every square submatrix of a Cauchy matrix is then
    invertible and every coefficient is nonzero — exactly the family
    the paper recommends for the dispersion matrix ``E``.
    """
    if len(set(xs)) != len(xs) or len(set(ys)) != len(ys):
        raise ValueError("Cauchy points must be distinct within xs and ys")
    if set(xs) & set(ys):
        raise ValueError("Cauchy xs and ys must not intersect")
    return Matrix(
        field,
        [[field.inv(x ^ y) for y in ys] for x in xs],
    )


def default_cauchy_matrix(field: GF2, k: int) -> Matrix:
    """A canonical k x k Cauchy matrix using the first 2k field elements."""
    if 2 * k > field.order:
        raise ValueError(
            f"GF(2^{field.degree}) too small for a {k}x{k} Cauchy matrix"
        )
    xs = list(range(k))
    ys = list(range(k, 2 * k))
    return cauchy_matrix(field, xs, ys)


def vandermonde_matrix(field: GF2, points: Sequence[int], ncols: int) -> Matrix:
    """Vandermonde matrix ``V[i][j] = points[i] ** j``.

    Square Vandermonde matrices on distinct points are invertible;
    with all points nonzero every coefficient is nonzero too.
    """
    if len(set(points)) != len(points):
        raise ValueError("Vandermonde points must be distinct")
    return Matrix(
        field,
        [[field.pow(p, j) for j in range(ncols)] for p in points],
    )


def random_nonsingular_matrix(
    field: GF2,
    k: int,
    rng: random.Random,
    require_all_nonzero: bool = False,
    max_attempts: int = 10_000,
) -> Matrix:
    """Sample a random invertible k x k matrix (paper's Table-2 setup).

    With ``require_all_nonzero`` the sample is additionally rejected
    until no coefficient is zero, matching the paper's "good E"
    recommendation.  Rejection sampling converges fast: a random square
    matrix over GF(q) is invertible with probability > 0.288 for every
    q >= 2, and much higher for larger fields.
    """
    lo = 1 if require_all_nonzero else 0
    for __ in range(max_attempts):
        candidate = Matrix(
            field,
            [
                [rng.randrange(lo, field.order) for __ in range(k)]
                for __ in range(k)
            ],
        )
        if candidate.is_invertible():
            return candidate
    raise RuntimeError(
        f"failed to sample an invertible {k}x{k} matrix over "
        f"GF(2^{field.degree}) in {max_attempts} attempts"
    )
