"""Binary extension fields GF(2^g) with table-driven arithmetic.

The paper (section 4) constructs a field Phi = GF(2^g) whose elements are
bit strings of size ``g``; addition is bitwise XOR and multiplication is
"implemented by small tables".  This module implements exactly that:
for each field a generator element is used to build log/antilog tables,
making multiplication, division and inversion O(1) table lookups.

Fields for every 1 <= g <= 16 are supported, which covers every chunk
geometry the paper discusses (dispersion pieces of 2, 4 or 8 bits,
LH*_RS parity over GF(2^8), and the 16-bit field occasionally used for
very wide chunks).
"""

from __future__ import annotations

from typing import Iterable, Iterator

#: Default primitive (irreducible, with 2 as a generator where possible)
#: polynomials for GF(2^g), expressed with the leading term included:
#: e.g. 0x11B = x^8 + x^4 + x^3 + x + 1 (the Rijndael polynomial).
DEFAULT_POLYNOMIALS: dict[int, int] = {
    1: 0b11,                 # x + 1
    2: 0b111,                # x^2 + x + 1
    3: 0b1011,               # x^3 + x + 1
    4: 0b10011,              # x^4 + x + 1
    5: 0b100101,             # x^5 + x^2 + 1
    6: 0b1000011,            # x^6 + x + 1
    7: 0b10001001,           # x^7 + x^3 + 1
    8: 0x11D,                # x^8 + x^4 + x^3 + x^2 + 1 (classic RS poly)
    9: 0b1000010001,         # x^9 + x^4 + 1
    10: 0b10000001001,       # x^10 + x^3 + 1
    11: 0b100000000101,      # x^11 + x^2 + 1
    12: 0b1000001010011,     # x^12 + x^6 + x^4 + x + 1
    13: 0b10000000011011,    # x^13 + x^4 + x^3 + x + 1
    14: 0b100010001000011,   # x^14 + x^10 + x^6 + x + 1
    15: 0b1000000000000011,  # x^15 + x + 1
    16: 0b10001000000001011,  # x^16 + x^12 + x^3 + x + 1
}


class GF2:
    """The finite field GF(2^g), 1 <= g <= 16.

    Elements are plain Python ``int`` values in ``range(2**g)``; the
    field object carries the arithmetic.  Instances are cached per
    ``(g, polynomial)`` pair, so ``GF2(8) is GF2(8)`` holds and the
    (up to 128 KiB) tables are built once.

    >>> f = GF2(8, polynomial=0x11B)  # the Rijndael field
    >>> f.mul(0x57, 0x83)             # the FIPS-197 worked example
    193
    >>> GF2(8).mul(3, GF2(8).inv(3))  # default RS polynomial 0x11D
    1
    """

    _cache: dict[tuple[int, int], "GF2"] = {}

    def __new__(cls, g: int, polynomial: int | None = None) -> "GF2":
        if not 1 <= g <= 16:
            raise ValueError(f"GF(2^g) supported for 1 <= g <= 16, got g={g}")
        poly = DEFAULT_POLYNOMIALS[g] if polynomial is None else polynomial
        key = (g, poly)
        cached = cls._cache.get(key)
        if cached is not None:
            return cached
        self = super().__new__(cls)
        self._init_tables(g, poly)
        cls._cache[key] = self
        return self

    def _init_tables(self, g: int, poly: int) -> None:
        order = 1 << g
        if poly >> g != 1:
            raise ValueError(
                f"polynomial {poly:#x} does not have degree {g}"
            )
        self.degree = g
        self.order = order
        self.polynomial = poly
        # Find a generator: try alpha = 2 (the polynomial "x") first,
        # which is a generator whenever poly is primitive; otherwise
        # fall back to an exhaustive search.
        gen = self._find_generator(g, poly)
        self.generator = gen
        exp = [0] * (2 * order)       # exp[i] = gen^i, doubled to skip mod
        log = [0] * order             # log[x] = i with gen^i == x
        x = 1
        for i in range(order - 1):
            exp[i] = x
            log[x] = i
            x = self._slow_mul(x, gen)
        if x != 1:
            raise ValueError(
                f"{gen} is not a generator of GF(2^{g}) mod {poly:#x}"
            )
        for i in range(order - 1, 2 * order):
            exp[i] = exp[i - (order - 1)]
        self._exp = exp
        self._log = log

    def _find_generator(self, g: int, poly: int) -> int:
        order = 1 << g
        for candidate in range(2, order):
            x = candidate
            seen = 1
            while x != 1:
                x = self._slow_mul_with(x, candidate, g, poly)
                seen += 1
                if seen > order:
                    break
            # candidate generates the multiplicative group iff its order
            # is exactly 2^g - 1.
            if seen == order - 1 or (seen == 1 and order == 2):
                return candidate
        if order == 2:
            return 1
        raise ValueError(f"no generator found for GF(2^{g}) mod {poly:#x}")

    def _slow_mul(self, a: int, b: int) -> int:
        return self._slow_mul_with(a, b, self.degree, self.polynomial)

    @staticmethod
    def _slow_mul_with(a: int, b: int, g: int, poly: int) -> int:
        """Carry-less multiply then reduce; used only for table building."""
        result = 0
        while b:
            if b & 1:
                result ^= a
            b >>= 1
            a <<= 1
            if a >> g:
                a ^= poly
        return result

    # -- field operations -------------------------------------------------

    def add(self, a: int, b: int) -> int:
        """Field addition (bitwise XOR, as the paper defines it)."""
        return a ^ b

    # Subtraction equals addition in characteristic 2.
    sub = add

    def mul(self, a: int, b: int) -> int:
        """Field multiplication via log/antilog tables."""
        if a == 0 or b == 0:
            return 0
        return self._exp[self._log[a] + self._log[b]]

    def div(self, a: int, b: int) -> int:
        """Field division ``a / b``; raises ZeroDivisionError on b == 0."""
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^g)")
        if a == 0:
            return 0
        return self._exp[self._log[a] - self._log[b] + self.order - 1]

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises ZeroDivisionError on a == 0."""
        if a == 0:
            raise ZeroDivisionError("zero has no inverse in GF(2^g)")
        return self._exp[self.order - 1 - self._log[a]]

    def pow(self, a: int, e: int) -> int:
        """Raise ``a`` to the integer power ``e`` (e may be negative)."""
        if a == 0:
            if e == 0:
                return 1
            if e < 0:
                raise ZeroDivisionError("zero to a negative power")
            return 0
        exponent = (self._log[a] * e) % (self.order - 1)
        return self._exp[exponent]

    def log(self, a: int) -> int:
        """Discrete logarithm base :attr:`generator`."""
        if a == 0:
            raise ValueError("log of zero is undefined")
        return self._log[a]

    def exp(self, e: int) -> int:
        """Generator raised to ``e``."""
        return self._exp[e % (self.order - 1)]

    # -- vector helpers ----------------------------------------------------

    def dot(self, xs: Iterable[int], ys: Iterable[int]) -> int:
        """Inner product of two equal-length vectors over the field."""
        acc = 0
        for x, y in zip(xs, ys, strict=True):
            acc ^= self.mul(x, y)
        return acc

    def elements(self) -> Iterator[int]:
        """Iterate over all field elements, 0 first."""
        return iter(range(self.order))

    def validate(self, a: int) -> int:
        """Return ``a`` if it is a field element, else raise ValueError."""
        if not 0 <= a < self.order:
            raise ValueError(
                f"{a} is not an element of GF(2^{self.degree})"
            )
        return a

    # -- dunder ------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GF2(degree={self.degree}, polynomial={self.polynomial:#x})"

    def __reduce__(self):
        # Support pickling by re-constructing through the cache.
        return (GF2, (self.degree, self.polynomial))
