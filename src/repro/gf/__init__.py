"""Galois-field substrate: GF(2^g) arithmetic and linear algebra.

The paper's Stage-3 dispersion (section 4) and the LH*_RS parity
calculus (Litwin/Moussa/Schwarz, TODS 2005) both operate over small
binary extension fields.  This package provides:

* :class:`repro.gf.field.GF2` — GF(2^g) for 1 <= g <= 16 with
  log/antilog tables, the representation used throughout the paper
  ("Addition and subtraction are defined as the bitwise XOR of two
  operands; multiplication and division are more involved ...
  implemented by small tables").
* :class:`repro.gf.matrix.Matrix` — dense matrices over a GF2 field
  with Gauss-Jordan inversion, rank, determinant.
* Constructors for the matrix families the paper recommends for the
  dispersion matrix ``E``: :func:`repro.gf.matrix.cauchy_matrix` and
  :func:`repro.gf.matrix.vandermonde_matrix`, plus
  :func:`repro.gf.matrix.random_nonsingular_matrix` used in the
  paper's Table-2 experiment ("a random non-singular matrix").
"""

from repro.gf.field import GF2, DEFAULT_POLYNOMIALS
from repro.gf.matrix import (
    Matrix,
    cauchy_matrix,
    default_cauchy_matrix,
    identity_matrix,
    random_nonsingular_matrix,
    vandermonde_matrix,
)

__all__ = [
    "GF2",
    "DEFAULT_POLYNOMIALS",
    "Matrix",
    "identity_matrix",
    "cauchy_matrix",
    "default_cauchy_matrix",
    "vandermonde_matrix",
    "random_nonsingular_matrix",
]
