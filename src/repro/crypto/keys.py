"""Key hierarchy for the complete scheme.

One master secret is held by the (trusted) client.  Every cryptographic
component of the scheme gets its own derived sub-key so that no storage
site learns anything usable about another component:

* the record-store key (strong AES encryption of whole records);
* one chunk-PRP key per chunking offset (Stage 1 ECB), so identical
  chunks in *different* chunkings do not correlate across sites;
* per-record IV/nonce derivation for the record store.

Derivation uses HKDF with explicit context labels.
"""

from __future__ import annotations

from repro.crypto.prf import hkdf_derive


class KeyHierarchy:
    """Derives the scheme's sub-keys from a single master secret.

    >>> kh = KeyHierarchy(b"master secret")
    >>> kh.record_store_key() == kh.record_store_key()
    True
    >>> kh.chunking_key(0) != kh.chunking_key(1)
    True
    """

    def __init__(self, master: bytes, key_length: int = 16) -> None:
        if not master:
            raise ValueError("master secret must be non-empty")
        if key_length not in (16, 24, 32):
            raise ValueError("key length must be an AES key size")
        self._master = bytes(master)
        self.key_length = key_length

    def _derive(self, label: bytes, length: int | None = None) -> bytes:
        return hkdf_derive(
            self._master, b"repro/" + label, length or self.key_length
        )

    def record_store_key(self) -> bytes:
        """AES key for the strongly encrypted record-store copy."""
        return self._derive(b"record-store")

    def chunking_key(self, chunking_id: int) -> bytes:
        """Stage-1 PRP key for chunking offset ``chunking_id``."""
        if chunking_id < 0:
            raise ValueError("chunking id must be non-negative")
        return self._derive(b"chunking/" + str(chunking_id).encode())

    def record_nonce(self, rid: int) -> bytes:
        """Deterministic 8-byte CTR nonce for record ``rid``.

        Deterministic per (master, rid) so re-encrypting the same
        record is idempotent; distinct records get independent nonces.
        """
        if rid < 0:
            raise ValueError("record identifier must be non-negative")
        return self._derive(b"nonce/" + str(rid).encode(), 8)

    def subkey(self, label: str, length: int | None = None) -> bytes:
        """Escape hatch for additional labelled sub-keys."""
        return self._derive(b"custom/" + label.encode(), length)
