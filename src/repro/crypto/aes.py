"""AES (FIPS-197) implemented from scratch.

Supports 128-, 192- and 256-bit keys.  The implementation follows the
specification directly — S-box generated from the multiplicative
inverse in GF(2^8) composed with the affine map, column mixing via
xtime — and is validated against the FIPS-197 appendix vectors in
``tests/crypto/test_aes.py``.

This is the "strong encryption" of the paper's record store.  It is a
plain, readable software AES; it makes no constant-time claims, which
is fine for a simulation study.
"""

from __future__ import annotations

_RIJNDAEL_POLY = 0x11B


def _gf_mul(a: int, b: int) -> int:
    """Multiply in GF(2^8) modulo the Rijndael polynomial."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
        if a & 0x100:
            a ^= _RIJNDAEL_POLY
    return result


def _build_sbox() -> tuple[list[int], list[int]]:
    """Generate the S-box from first principles (inverse + affine map)."""
    # Multiplicative inverses, with inv(0) := 0.
    inverse = [0] * 256
    for x in range(1, 256):
        for y in range(1, 256):
            if _gf_mul(x, y) == 1:
                inverse[x] = y
                break
    sbox = [0] * 256
    inv_sbox = [0] * 256
    for x in range(256):
        b = inverse[x]
        value = 0x63
        for shift in (0, 1, 2, 3, 4):
            rotated = ((b << shift) | (b >> (8 - shift))) & 0xFF
            value ^= rotated
        sbox[x] = value
        inv_sbox[value] = x
    return sbox, inv_sbox


_SBOX, _INV_SBOX = _build_sbox()
_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(_gf_mul(_RCON[-1], 2))

# Precomputed xtime-style multiplication tables for MixColumns.
_MUL2 = [_gf_mul(x, 2) for x in range(256)]
_MUL3 = [_gf_mul(x, 3) for x in range(256)]
_MUL9 = [_gf_mul(x, 9) for x in range(256)]
_MUL11 = [_gf_mul(x, 11) for x in range(256)]
_MUL13 = [_gf_mul(x, 13) for x in range(256)]
_MUL14 = [_gf_mul(x, 14) for x in range(256)]


class AES:
    """A raw AES block cipher over 16-byte blocks.

    >>> key = bytes(range(16))
    >>> aes = AES(key)
    >>> block = bytes(16)
    >>> aes.decrypt_block(aes.encrypt_block(block)) == block
    True
    """

    block_size = 16

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise ValueError(
                f"AES key must be 16, 24 or 32 bytes, got {len(key)}"
            )
        self.key = bytes(key)
        self._rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(self.key)

    def _expand_key(self, key: bytes) -> list[list[int]]:
        """FIPS-197 key expansion; returns round keys as 16-byte lists."""
        nk = len(key) // 4
        nr = self._rounds
        words = [list(key[4 * i:4 * i + 4]) for i in range(nk)]
        for i in range(nk, 4 * (nr + 1)):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([a ^ b for a, b in zip(words[i - nk], temp)])
        round_keys = []
        for r in range(nr + 1):
            rk: list[int] = []
            for w in words[4 * r:4 * r + 4]:
                rk.extend(w)
            round_keys.append(rk)
        return round_keys

    # -- block operations -------------------------------------------------
    #
    # The state is kept as a flat 16-int list in column-major order as in
    # the spec: state[r + 4c] is row r, column c; since the input is read
    # column by column this is just the byte order of the block.

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError("AES operates on 16-byte blocks")
        state = list(block)
        self._add_round_key(state, 0)
        for r in range(1, self._rounds):
            self._sub_bytes(state)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, r)
        self._sub_bytes(state)
        self._shift_rows(state)
        self._add_round_key(state, self._rounds)
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError("AES operates on 16-byte blocks")
        state = list(block)
        self._add_round_key(state, self._rounds)
        for r in range(self._rounds - 1, 0, -1):
            self._inv_shift_rows(state)
            self._inv_sub_bytes(state)
            self._add_round_key(state, r)
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._inv_sub_bytes(state)
        self._add_round_key(state, 0)
        return bytes(state)

    # -- round primitives ---------------------------------------------------

    def _add_round_key(self, state: list[int], r: int) -> None:
        rk = self._round_keys[r]
        for i in range(16):
            state[i] ^= rk[i]

    @staticmethod
    def _sub_bytes(state: list[int]) -> None:
        for i in range(16):
            state[i] = _SBOX[state[i]]

    @staticmethod
    def _inv_sub_bytes(state: list[int]) -> None:
        for i in range(16):
            state[i] = _INV_SBOX[state[i]]

    @staticmethod
    def _shift_rows(state: list[int]) -> None:
        # Row r (bytes r, r+4, r+8, r+12) rotates left by r.
        for r in range(1, 4):
            row = [state[r + 4 * c] for c in range(4)]
            row = row[r:] + row[:r]
            for c in range(4):
                state[r + 4 * c] = row[c]

    @staticmethod
    def _inv_shift_rows(state: list[int]) -> None:
        for r in range(1, 4):
            row = [state[r + 4 * c] for c in range(4)]
            row = row[-r:] + row[:-r]
            for c in range(4):
                state[r + 4 * c] = row[c]

    @staticmethod
    def _mix_columns(state: list[int]) -> None:
        for c in range(4):
            a0, a1, a2, a3 = state[4 * c:4 * c + 4]
            state[4 * c + 0] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3
            state[4 * c + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3
            state[4 * c + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3]
            state[4 * c + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3]

    @staticmethod
    def _inv_mix_columns(state: list[int]) -> None:
        for c in range(4):
            a0, a1, a2, a3 = state[4 * c:4 * c + 4]
            state[4 * c + 0] = _MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3]
            state[4 * c + 1] = _MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3]
            state[4 * c + 2] = _MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3]
            state[4 * c + 3] = _MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3]
