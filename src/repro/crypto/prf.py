"""Keyed pseudo-random functions and key derivation.

Built on ``hashlib``'s SHA-256 (standard library).  Provides:

* :func:`hmac_sha256` — RFC-2104 HMAC, written out explicitly rather
  than via :mod:`hmac` so the construction is visible and testable
  against RFC-4231 vectors.
* :func:`hkdf_derive` — an HKDF-style extract-and-expand used by the
  key hierarchy to derive independent sub-keys.
* :func:`prf_int` — a keyed PRF with integer output in ``range(2**bits)``,
  the round function of the Feistel PRP.
"""

from __future__ import annotations

import hashlib

_BLOCK_SIZE = 64  # SHA-256 block size in bytes.


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """RFC-2104 HMAC with SHA-256."""
    if len(key) > _BLOCK_SIZE:
        key = hashlib.sha256(key).digest()
    key = key.ljust(_BLOCK_SIZE, b"\x00")
    o_key = bytes(b ^ 0x5C for b in key)
    i_key = bytes(b ^ 0x36 for b in key)
    inner = hashlib.sha256(i_key + message).digest()
    return hashlib.sha256(o_key + inner).digest()


def hkdf_derive(
    master: bytes,
    info: bytes,
    length: int = 32,
    salt: bytes = b"",
) -> bytes:
    """HKDF (RFC 5869) extract-and-expand keyed on ``master``.

    ``info`` is the context label that separates sub-keys; distinct
    labels give computationally independent keys.
    """
    if length <= 0 or length > 255 * 32:
        raise ValueError("derived length must be in 1..8160 bytes")
    prk = hmac_sha256(salt if salt else bytes(32), master)
    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = hmac_sha256(prk, previous + info + bytes([counter]))
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def prf_int(key: bytes, message: bytes, bits: int) -> int:
    """A keyed PRF returning an integer uniform over ``range(2**bits)``.

    For bits <= 256 a single HMAC suffices; wider outputs chain
    counter-indexed HMAC blocks.
    """
    if bits <= 0:
        raise ValueError("bits must be positive")
    nbytes = (bits + 7) // 8
    digest = b""
    counter = 0
    while len(digest) < nbytes:
        digest += hmac_sha256(key, message + counter.to_bytes(4, "big"))
        counter += 1
    value = int.from_bytes(digest[:nbytes], "big")
    return value & ((1 << bits) - 1)
