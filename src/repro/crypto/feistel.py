"""A pseudo-random permutation (PRP) over an arbitrary bit-width domain.

The paper's Stage 1 needs ECB on *chunks*: "Basically, ECB uses
standard secret key encryption to generate a seemingly random,
reversible mapping of clear-text chunks to encrypted chunks of the
same size."  A chunk is only ``s * f`` bits wide (e.g. 4 ASCII symbols
= 32 bits, or a Stage-2 code of 16 bits), far below AES's 128-bit
block, so a raw AES-ECB cannot provide a same-size mapping.

We therefore build the standard format-preserving construction:

* a **balanced Feistel network** over ``2w`` bits (Luby-Rackoff), with
  an HMAC-based keyed round function, gives a PRP on even widths;
* **cycle-walking** extends it to odd widths and to non-power-of-two
  domain sizes: permute over the next even width and re-apply the
  permutation until the value falls back inside the domain.  Because
  the enclosing permutation is a bijection, cycle-walking is also a
  bijection on the domain and terminates (expected < 4 iterations for
  our parameters).

The result is deterministic per key — equal chunks map to equal
ciphertext chunks, which is exactly the (weak, searchable) property
Stage 1 requires.
"""

from __future__ import annotations

from repro.crypto.prf import prf_int

_DEFAULT_ROUNDS = 10

#: Widest enclosing Feistel domain (in bits) for which a full
#: permutation table may be materialised.  2^20 entries of machine
#: ints is a few megabytes — beyond that the table would dominate
#: memory and the per-value path wins anyway.
MAX_TABLE_BITS = 20


class FeistelPRP:
    """A keyed bijection on ``range(domain_size)``.

    ``domain_size`` may be any integer >= 2; when it is ``2**width``
    the PRP is a permutation of all ``width``-bit strings (the paper's
    chunk space).

    >>> prp = FeistelPRP(b"k" * 16, domain_size=2 ** 16)
    >>> prp.decrypt(prp.encrypt(12345))
    12345
    """

    def __init__(
        self,
        key: bytes,
        domain_size: int,
        rounds: int = _DEFAULT_ROUNDS,
    ) -> None:
        if domain_size < 2:
            raise ValueError("domain size must be at least 2")
        if rounds < 4:
            # Luby-Rackoff: 3 rounds give a PRP, 4 a strong PRP; we do
            # not accept fewer than 4 to keep the construction sound.
            raise ValueError("at least 4 Feistel rounds are required")
        self.key = bytes(key)
        self.domain_size = domain_size
        self.rounds = rounds
        # Enclosing power-of-two domain of even bit width.
        width = max(2, (domain_size - 1).bit_length())
        if width % 2:
            width += 1
        self._width = width
        self._half = width // 2
        self._half_mask = (1 << self._half) - 1
        self._round_keys = [
            self.key + b"|feistel|" + r.to_bytes(2, "big")
            for r in range(rounds)
        ]
        # Lazily built full permutation table (value -> encrypt(value))
        # for small domains; see :meth:`permutation_table`.
        self._table: list[int] | None = None

    # -- the enclosing permutation on 2^width ------------------------------

    def _round(self, r: int, value: int) -> int:
        return prf_int(
            self._round_keys[r],
            value.to_bytes((self._half + 7) // 8, "big"),
            self._half,
        )

    def _permute(self, value: int) -> int:
        left = value >> self._half
        right = value & self._half_mask
        for r in range(self.rounds):
            left, right = right, left ^ self._round(r, right)
        return (left << self._half) | right

    def _unpermute(self, value: int) -> int:
        left = value >> self._half
        right = value & self._half_mask
        for r in range(self.rounds - 1, -1, -1):
            left, right = right ^ self._round(r, left), left
        return (left << self._half) | right

    # -- batch fast path -----------------------------------------------------

    def permutation_table(self) -> list[int] | None:
        """The full ``value -> encrypt(value)`` table, or None.

        Only materialised for enclosing widths up to
        :data:`MAX_TABLE_BITS`.  Building it needs just
        ``rounds * 2**(width/2)`` PRF evaluations — the HMAC round
        function depends on one half only — followed by pure table
        arithmetic, so a 16-bit domain costs ~2.5k HMACs instead of
        the ~650k a per-value sweep would pay.  The result is
        byte-identical to :meth:`encrypt` (same round values, same
        cycle-walk), which the equivalence suite pins.
        """
        if self._table is None and self._width <= MAX_TABLE_BITS:
            self._table = self._build_table()
        return self._table

    def _build_table(self) -> list[int]:
        half = self._half
        size = 1 << self._width
        round_tables = [
            [self._round(r, value) for value in range(1 << half)]
            for r in range(self.rounds)
        ]
        lefts = [value >> half for value in range(size)]
        rights = list(range(1 << half)) * (1 << half)
        for table in round_tables:
            lefts, rights = rights, [
                left ^ table[right]
                for left, right in zip(lefts, rights)
            ]
        perm = [
            (left << half) | right
            for left, right in zip(lefts, rights)
        ]
        domain = self.domain_size
        if domain == size:
            return perm
        table = []
        for value in range(domain):
            image = perm[value]
            while image >= domain:  # cycle-walking, via the table
                image = perm[image]
            table.append(image)
        return table

    def encrypt_stream(self, values: list[int]) -> list[int]:
        """Batch :meth:`encrypt`, via the permutation table when small.

        >>> prp = FeistelPRP(b"k" * 16, domain_size=2 ** 8)
        >>> prp.encrypt_stream([1, 2, 3]) == [prp.encrypt(v)
        ...                                   for v in (1, 2, 3)]
        True
        """
        table = self.permutation_table()
        if table is None:
            return [self.encrypt(value) for value in values]
        if values and not 0 <= min(values) <= max(values) < self.domain_size:
            bad = min(values) if min(values) < 0 else max(values)
            raise ValueError(
                f"value {bad} outside domain [0, {self.domain_size})"
            )
        return [table[value] for value in values]

    # -- public API ---------------------------------------------------------

    def encrypt(self, value: int) -> int:
        """Map ``value`` to its image under the keyed permutation."""
        self._check(value)
        image = self._permute(value)
        while image >= self.domain_size:  # cycle-walking
            image = self._permute(image)
        return image

    def decrypt(self, value: int) -> int:
        """Invert :meth:`encrypt`."""
        self._check(value)
        image = self._unpermute(value)
        while image >= self.domain_size:
            image = self._unpermute(image)
        return image

    def _check(self, value: int) -> None:
        if not 0 <= value < self.domain_size:
            raise ValueError(
                f"value {value} outside domain [0, {self.domain_size})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FeistelPRP(domain_size={self.domain_size}, "
            f"rounds={self.rounds})"
        )
