"""Cryptographic substrate.

The paper needs two distinct encryption tools:

1. **Strong encryption for the record store.**  "We strongly encrypt the
   records themselves."  We provide AES (implemented from scratch
   against FIPS-197, validated by the official test vectors) in CBC and
   CTR modes with PKCS#7 padding and per-record IVs derived from the
   record identifier.

2. **A deterministic pseudo-random permutation (ECB) on chunk-sized
   domains.**  Stage 1 encrypts each chunk independently with ECB so
   equal chunks stay equal and chunk-aligned search still works.  Chunk
   widths are far below AES's 128-bit block (16-48 bits are typical),
   so we build a balanced Feistel PRP over an arbitrary bit-width with
   an HMAC-based round function and cycle-walking for odd widths — the
   standard format-preserving-encryption construction.

Key material is organised by :class:`repro.crypto.keys.KeyHierarchy`,
which derives independent sub-keys for the record store, each chunking
and each dispersal site from one master secret.
"""

from repro.crypto.aes import AES
from repro.crypto.feistel import FeistelPRP
from repro.crypto.keys import KeyHierarchy
from repro.crypto.modes import (
    CbcCipher,
    CtrCipher,
    EcbCipher,
    pkcs7_pad,
    pkcs7_unpad,
)
from repro.crypto.prf import hkdf_derive, hmac_sha256, prf_int

__all__ = [
    "AES",
    "FeistelPRP",
    "KeyHierarchy",
    "EcbCipher",
    "CbcCipher",
    "CtrCipher",
    "pkcs7_pad",
    "pkcs7_unpad",
    "hmac_sha256",
    "hkdf_derive",
    "prf_int",
]
