"""The Song-Wagner-Perrig encrypted word-search scheme.

The paper's section 8: "Song's et al. method of encrypting while
allowing for word searches should be adapted to our system."  This
module implements that adaptation target: the final scheme of Song,
Wagner, Perrig, *Practical Techniques for Searches on Encrypted Data*
(IEEE S&P 2000) — sequential scan with hidden queries:

* Every word ``W`` is first deterministically pre-encrypted:
  ``X = E_master(W)``, split into ``X = L || R`` with ``|R| = m``
  check bits.
* Position ``i`` of a document gets a pseudo-random value
  ``S_i`` (derived from a per-document seed), and the stored
  ciphertext is ``C_i = X xor (S_i || F_{k_i}(S_i))`` where the
  per-word key ``k_i = f(L)`` depends only on the word.
* To search for ``W`` the client reveals ``(X, k)``; a server can now
  recognise positions holding ``W`` — ``C_i xor X = (s || t)`` with
  ``t = F_k(s)`` — but learns nothing about other words, and false
  positives occur with probability 2^-m per position.
* The client, knowing the seed, can always reconstruct ``S_i`` and
  thereby decrypt every position (scheme III of the SWP paper).

Word width is fixed at :data:`WORD_BYTES`; longer words are hashed
into the slot (the SWP paper's own suggestion), shorter ones padded.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto.aes import AES
from repro.crypto.prf import hkdf_derive, hmac_sha256

#: Fixed word-slot width in bytes (the SWP block).
WORD_BYTES = 16

#: Check-part width ``m`` in bytes; per-position false-positive
#: probability is 2^-(8 * CHECK_BYTES).
CHECK_BYTES = 4

LEFT_BYTES = WORD_BYTES - CHECK_BYTES

_HMAC_BLOCK = 64  # SHA-256 block size in bytes.


def _normalise(word: str) -> bytes:
    """Map a word into the fixed slot (pad short, hash long)."""
    raw = word.encode("utf-8")
    if len(raw) > WORD_BYTES:
        return hashlib.sha256(raw).digest()[:WORD_BYTES]
    return raw.ljust(WORD_BYTES, b"\x00")


def _xor(a: bytes, b: bytes) -> bytes:
    if len(a) != len(b):
        raise ValueError("xor of unequal lengths")
    return (
        int.from_bytes(a, "big") ^ int.from_bytes(b, "big")
    ).to_bytes(len(a), "big")


@dataclass(frozen=True)
class Trapdoor:
    """What the client reveals to search for one word: (X, k)."""

    pre_encrypted: bytes  # X = E(W)
    word_key: bytes       # k = f(L)

    @property
    def wire_size(self) -> int:
        """Serialized size of the search token a query actually ships
        (X plus k) — what scan request accounting bills."""
        return len(self.pre_encrypted) + len(self.word_key)


class SwpCipher:
    """Encrypt/search/decrypt word sequences per SWP scheme III.

    >>> swp = SwpCipher(b"master")
    >>> cells = swp.encrypt_words(7, ["HELLO", "WORLD"])
    >>> swp.match(cells[1], swp.trapdoor("WORLD"))
    True
    >>> swp.decrypt_words(7, cells)
    ['HELLO', 'WORLD']
    """

    def __init__(self, master_key: bytes) -> None:
        if not master_key:
            raise ValueError("master key must be non-empty")
        self._pre_key = hkdf_derive(master_key, b"swp/pre-encrypt", 16)
        self._word_key_key = hkdf_derive(master_key, b"swp/word-key", 32)
        self._seed_key = hkdf_derive(master_key, b"swp/stream-seed", 32)
        self._aes = AES(self._pre_key)

    # -- core SWP pieces ------------------------------------------------------

    def _pre_encrypt(self, word: str) -> bytes:
        """X = E_master(W), deterministic."""
        return self._aes.encrypt_block(_normalise(word))

    def _word_specific_key(self, left: bytes) -> bytes:
        """k = f(L): depends only on the word, revealable per query."""
        return hmac_sha256(self._word_key_key, left)[:16]

    def _stream_value(self, document_id: int, position: int) -> bytes:
        """S_i: the pseudo-random left part for one position."""
        message = document_id.to_bytes(8, "big") + position.to_bytes(
            8, "big"
        )
        return hmac_sha256(self._seed_key, message)[:LEFT_BYTES]

    @staticmethod
    def _check(word_key: bytes, s: bytes) -> bytes:
        """F_k(S): the check part binding S to the word key."""
        return hmac_sha256(word_key, s)[:CHECK_BYTES]

    @staticmethod
    def _hoisted_check(word_key: bytes):
        """A closure computing :meth:`_check` with the RFC-2104 key
        schedule built once instead of per call.

        A scan applies one word key to every cell in a bucket, so the
        key padding and the first compression of both HMAC passes are
        loop-invariant; streaming SHA-256 (``copy()`` + ``update()``)
        makes the reuse byte-identical to the reference construction.
        """
        if len(word_key) > _HMAC_BLOCK:
            word_key = hashlib.sha256(word_key).digest()
        padded = word_key.ljust(_HMAC_BLOCK, b"\x00")
        inner_base = hashlib.sha256(bytes(b ^ 0x36 for b in padded))
        outer_base = hashlib.sha256(bytes(b ^ 0x5C for b in padded))

        def check(s: bytes) -> bytes:
            inner = inner_base.copy()
            inner.update(s)
            outer = outer_base.copy()
            outer.update(inner.digest())
            return outer.digest()[:CHECK_BYTES]

        return check

    # -- public API ---------------------------------------------------------------

    def encrypt_word(self, document_id: int, position: int,
                     word: str) -> bytes:
        """One stored cell: C_i = X xor (S_i || F_{k}(S_i))."""
        x = self._pre_encrypt(word)
        word_key = self._word_specific_key(x[:LEFT_BYTES])
        s = self._stream_value(document_id, position)
        mask = s + self._check(word_key, s)
        return _xor(x, mask)

    def encrypt_words(self, document_id: int,
                      words: list[str]) -> list[bytes]:
        return [
            self.encrypt_word(document_id, position, word)
            for position, word in enumerate(words)
        ]

    def trapdoor(self, word: str) -> Trapdoor:
        """The search token revealed to the servers."""
        x = self._pre_encrypt(word)
        return Trapdoor(
            pre_encrypted=x,
            word_key=self._word_specific_key(x[:LEFT_BYTES]),
        )

    @staticmethod
    def match(cell: bytes, trapdoor: Trapdoor) -> bool:
        """Server-side test — needs no keys beyond the trapdoor.

        ``cell xor X`` must have the form ``s || F_k(s)``.
        """
        if len(cell) != WORD_BYTES:
            raise ValueError("malformed SWP cell")
        masked = _xor(cell, trapdoor.pre_encrypted)
        s, t = masked[:LEFT_BYTES], masked[LEFT_BYTES:]
        return SwpCipher._check(trapdoor.word_key, s) == t

    @staticmethod
    def match_positions(cells: bytes | memoryview,
                        trapdoor: Trapdoor) -> list[int]:
        """Batched :meth:`match` over a whole cell blob.

        Unmasks every 16-byte cell in one big-integer XOR (``X``
        repeated across the blob) instead of a per-cell Python loop,
        and hoists the HMAC key schedule out of the loop (see
        :meth:`_hoisted_check`); one HMAC *finalisation* per cell is
        irreducible — each position needs its own ``F_k(s)``.  Returns
        the matching cell positions, ascending, exactly as per-cell
        :meth:`match` calls would.
        """
        length = len(cells)
        if length % WORD_BYTES:
            raise ValueError("malformed SWP cell blob")
        count = length // WORD_BYTES
        if not count:
            return []
        mask = int.from_bytes(trapdoor.pre_encrypted * count, "big")
        masked = (int.from_bytes(cells, "big") ^ mask).to_bytes(
            length, "big"
        )
        check = SwpCipher._hoisted_check(trapdoor.word_key)
        positions = []
        for position in range(count):
            base = position * WORD_BYTES
            split = base + LEFT_BYTES
            if check(masked[base:split]) == masked[
                    split:base + WORD_BYTES]:
                positions.append(position)
        return positions

    @staticmethod
    def match_positions_multi(
        cells: bytes | memoryview,
        trapdoors: "tuple[Trapdoor, ...] | list[Trapdoor]",
        checks: "list | None" = None,
    ) -> list[list[int]]:
        """:meth:`match_positions` for several trapdoors over one cell
        blob, sharing the big-integer conversion of the blob across
        all of them.  ``checks`` optionally supplies the hoisted HMAC
        closures (:meth:`_hoisted_check` per trapdoor) so a batched
        matcher can compile them once per bucket instead of once per
        record.  Each returned position list is exactly what
        :meth:`match_positions` returns for that trapdoor alone.
        """
        length = len(cells)
        if length % WORD_BYTES:
            raise ValueError("malformed SWP cell blob")
        count = length // WORD_BYTES
        if not count:
            return [[] for _ in trapdoors]
        cells_int = int.from_bytes(cells, "big")
        if checks is None:
            checks = [
                SwpCipher._hoisted_check(trapdoor.word_key)
                for trapdoor in trapdoors
            ]
        results = []
        for trapdoor, check in zip(trapdoors, checks):
            mask = int.from_bytes(trapdoor.pre_encrypted * count, "big")
            masked = (cells_int ^ mask).to_bytes(length, "big")
            positions = []
            for position in range(count):
                base = position * WORD_BYTES
                split = base + LEFT_BYTES
                if check(masked[base:split]) == masked[
                        split:base + WORD_BYTES]:
                    positions.append(position)
            results.append(positions)
        return results

    def decrypt_word(self, document_id: int, position: int,
                     cell: bytes) -> bytes:
        """Recover X (the deterministic word image) and invert it.

        The client rebuilds S_i from the seed, recovers L, recomputes
        the word key, strips the check part, and block-decrypts.
        Returns the normalised word slot (padded/hashed form).
        """
        s = self._stream_value(document_id, position)
        left = _xor(cell[:LEFT_BYTES], s)
        word_key = self._word_specific_key(left)
        right = _xor(cell[LEFT_BYTES:], self._check(word_key, s))
        return self._aes.decrypt_block(left + right)

    def decrypt_words(self, document_id: int,
                      cells: list[bytes]) -> list[str]:
        """Decrypt a whole document back to its word list.

        Only words that fit the slot un-hashed are recoverable as
        text (hashed overlong words come back as their digest form) —
        the SWP paper has the same asymmetry.
        """
        words = []
        for position, cell in enumerate(cells):
            slot = self.decrypt_word(document_id, position, cell)
            words.append(slot.rstrip(b"\x00").decode("utf-8",
                                                     errors="replace"))
        return words
