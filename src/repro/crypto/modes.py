"""Block-cipher modes of operation over the raw AES block cipher.

* :class:`EcbCipher` — the mode the paper names for index chunks when a
  chunk happens to be a whole number of AES blocks (rare; the usual
  chunk-sized ECB lives in :mod:`repro.crypto.feistel`).
* :class:`CbcCipher` and :class:`CtrCipher` — the "strong encryption"
  used for the record-store copy of each record.

All modes operate on ``bytes`` and return ``bytes``.  CBC uses PKCS#7
padding; CTR is length-preserving.
"""

from __future__ import annotations

from repro.crypto.aes import AES


def pkcs7_pad(data: bytes, block_size: int = 16) -> bytes:
    """Append PKCS#7 padding up to a multiple of ``block_size``."""
    if not 1 <= block_size <= 255:
        raise ValueError("block size must be in 1..255")
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len] * pad_len)


def pkcs7_unpad(data: bytes, block_size: int = 16) -> bytes:
    """Strip PKCS#7 padding; raises ValueError on malformed padding."""
    if not data or len(data) % block_size:
        raise ValueError("padded data length must be a positive multiple "
                         "of the block size")
    pad_len = data[-1]
    if not 1 <= pad_len <= block_size:
        raise ValueError("invalid padding length byte")
    if data[-pad_len:] != bytes([pad_len] * pad_len):
        raise ValueError("invalid padding bytes")
    return data[:-pad_len]


class EcbCipher:
    """Electronic Code Book over whole AES blocks.

    Deterministic by construction — equal plaintext blocks yield equal
    ciphertext blocks — which is precisely the property the paper's
    index records exploit (and the property its Stages 2 and 3 then
    have to defend).
    """

    def __init__(self, key: bytes) -> None:
        self._aes = AES(key)

    def encrypt(self, plaintext: bytes) -> bytes:
        padded = pkcs7_pad(plaintext)
        return b"".join(
            self._aes.encrypt_block(padded[i:i + 16])
            for i in range(0, len(padded), 16)
        )

    def decrypt(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) % 16:
            raise ValueError("ciphertext length must be a multiple of 16")
        padded = b"".join(
            self._aes.decrypt_block(ciphertext[i:i + 16])
            for i in range(0, len(ciphertext), 16)
        )
        return pkcs7_unpad(padded)


class CbcCipher:
    """Cipher Block Chaining with an explicit IV and PKCS#7 padding."""

    def __init__(self, key: bytes) -> None:
        self._aes = AES(key)

    def encrypt(self, plaintext: bytes, iv: bytes) -> bytes:
        if len(iv) != 16:
            raise ValueError("CBC IV must be 16 bytes")
        padded = pkcs7_pad(plaintext)
        out = bytearray()
        previous = iv
        for i in range(0, len(padded), 16):
            block = bytes(a ^ b for a, b in zip(padded[i:i + 16], previous))
            previous = self._aes.encrypt_block(block)
            out.extend(previous)
        return bytes(out)

    def decrypt(self, ciphertext: bytes, iv: bytes) -> bytes:
        if len(iv) != 16:
            raise ValueError("CBC IV must be 16 bytes")
        if not ciphertext or len(ciphertext) % 16:
            raise ValueError("ciphertext length must be a positive "
                             "multiple of 16")
        out = bytearray()
        previous = iv
        for i in range(0, len(ciphertext), 16):
            block = ciphertext[i:i + 16]
            plain = self._aes.decrypt_block(block)
            out.extend(a ^ b for a, b in zip(plain, previous))
            previous = block
        return pkcs7_unpad(bytes(out))


class CtrCipher:
    """Counter mode: length-preserving, nonce-based stream encryption."""

    def __init__(self, key: bytes) -> None:
        self._aes = AES(key)

    def _keystream(self, nonce: bytes, nblocks: int) -> bytes:
        if len(nonce) != 8:
            raise ValueError("CTR nonce must be 8 bytes")
        stream = bytearray()
        for counter in range(nblocks):
            block = nonce + counter.to_bytes(8, "big")
            stream.extend(self._aes.encrypt_block(block))
        return bytes(stream)

    def encrypt(self, plaintext: bytes, nonce: bytes) -> bytes:
        nblocks = (len(plaintext) + 15) // 16
        stream = self._keystream(nonce, nblocks)
        return bytes(a ^ b for a, b in zip(plaintext, stream))

    # CTR decryption is the same XOR with the same keystream.
    decrypt = encrypt
