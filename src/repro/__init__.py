"""repro — reproduction of Schwarz/Tsui/Litwin, ICDE 2006.

An encrypted, content-searchable scalable distributed data structure:
records are stored strongly encrypted in an LH* file, while weakly
encrypted *index records* (chunked, lossily compressed, ECB-encrypted,
dispersed) support parallel substring search with 100 % recall.

Quickstart::

    from repro import EncryptedSearchableStore, SchemeParameters

    store = EncryptedSearchableStore(SchemeParameters.full(4))
    store.put(7, "415-409-9999 SCHWARZ THOMAS")
    result = store.search("SCHWARZ")
    assert 7 in result.matches

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
reproduced tables and figures.
"""

from repro.core import (
    ConfigurationError,
    Disperser,
    EncryptedSearchableStore,
    FrequencyEncoder,
    IndexPipeline,
    QueryTooShortError,
    SchemeError,
    SchemeParameters,
    SearchResult,
    StorageLayout,
)
from repro.data import Directory, generate_directory
from repro.sdds import LHStarFile, LHStarRSFile

__version__ = "1.0.0"

__all__ = [
    "EncryptedSearchableStore",
    "SchemeParameters",
    "StorageLayout",
    "FrequencyEncoder",
    "Disperser",
    "IndexPipeline",
    "SearchResult",
    "SchemeError",
    "ConfigurationError",
    "QueryTooShortError",
    "Directory",
    "generate_directory",
    "LHStarFile",
    "LHStarRSFile",
    "__version__",
]
