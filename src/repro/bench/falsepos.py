"""False-positive measurement (paper section 7, Tables 4 and 5).

The paper extracts 1000 random records, searches for their 1000 last
names, and counts the searches that hit records not actually
containing the name.  Ground truth is raw substring occurrence in the
record's name text — "we did not count the occurrence of 'ADAMS' in
'ADAMSON' as a false positive, since the string occurs".

Three measurement modes, matching the paper's three columns:

* :func:`fp_symbol_encoding` (Table 4 FP1) — every symbol replaced by
  its Stage-2 bucket code; plain substring search on the code stream.
* :func:`fp_symbol_chunked` (Table 4 FP2) — the code stream chunked
  with chunk size 2 in both offsets (incomplete edge chunks deleted,
  as §7 describes); a search hits when any query series matches
  chunk-aligned in either chunking.
* :func:`fp_chunk_encoding` (Table 5) — two-symbol chunks encoded
  directly into one code each, two chunkings; the query's two series
  are matched at chunk granularity.

All three return an :class:`FPOutcome` with the hit/false-positive
counts plus the χ² statistics of the encoded record streams, which the
paper prints alongside.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.chisq import ngram_chi_square
from repro.core.encoder import FrequencyEncoder
from repro.core.search import aligned_find
from repro.data.phonebook import PhonebookEntry


@dataclass(frozen=True)
class FPOutcome:
    """Counts and stream statistics of one false-positive experiment."""

    n_codes: int
    chi_single: float
    chi_double: float
    chi_triple: float
    searches: int
    true_hits: int
    false_positives: int
    #: only set by the chunked mode: FPs of the unchunked baseline,
    #: for the paper's FP1-vs-FP2 comparison
    baseline_false_positives: int | None = None


def _truth_table(
    names: list[str], queries: list[str]
) -> list[list[bool]]:
    """truth[q][r]: does query q occur in record r's name text?"""
    return [[query in name for name in names] for query in queries]


def _chi(streams: list[bytes], n_codes: int) -> tuple[float, float, float]:
    single, __ = ngram_chi_square(streams, 1, symbol_space=n_codes)
    double, __ = ngram_chi_square(streams, 2, symbol_space=n_codes)
    triple, __ = ngram_chi_square(streams, 3, symbol_space=n_codes)
    return single, double, triple


def _queries_of(
    entries: list[PhonebookEntry], min_name_length: int
) -> list[str]:
    """The last-name query workload (optionally the paper's
    'names longer than 5 characters' restriction)."""
    return [
        entry.last_name
        for entry in entries
        if len(entry.last_name) > min_name_length
    ]


def fp_symbol_encoding(
    entries: list[PhonebookEntry],
    n_codes: int,
    min_name_length: int = 0,
    encoder: FrequencyEncoder | None = None,
) -> FPOutcome:
    """Table 4, FP1: per-symbol encoding, unchunked substring search."""
    names = [entry.name for entry in entries]
    raw = [name.encode("ascii") for name in names]
    if encoder is None:
        encoder = FrequencyEncoder.train(raw, 1, n_codes)
    streams = [encoder.encode_symbols(text) for text in raw]
    queries = _queries_of(entries, min_name_length)
    hits = fps = 0
    for query in queries:
        needle = encoder.encode_symbols(query.encode("ascii"))
        for name, stream in zip(names, streams):
            if needle in stream:
                if query in name:
                    hits += 1
                else:
                    fps += 1
    single, double, triple = _chi(streams, n_codes)
    return FPOutcome(
        n_codes=n_codes,
        chi_single=single,
        chi_double=double,
        chi_triple=triple,
        searches=len(queries),
        true_hits=hits,
        false_positives=fps,
    )


def fp_symbol_chunked(
    entries: list[PhonebookEntry],
    n_codes: int,
    chunk: int = 2,
    min_name_length: int = 0,
    encoder: FrequencyEncoder | None = None,
) -> FPOutcome:
    """Table 4, FP2: per-symbol encoding, then chunking (size 2).

    Record code streams are chunked at offsets 0 and 1 with incomplete
    edge chunks deleted; a query hits when any of its series occurs
    chunk-aligned in either chunking (the experiment's OR rule, which
    is what makes FP2 > FP1 in the paper).
    """
    names = [entry.name for entry in entries]
    raw = [name.encode("ascii") for name in names]
    if encoder is None:
        encoder = FrequencyEncoder.train(raw, 1, n_codes)
    streams = [encoder.encode_symbols(text) for text in raw]

    def chunkings(stream: bytes) -> list[bytes]:
        views = []
        for offset in range(chunk):
            usable = (len(stream) - offset) // chunk * chunk
            if usable:
                views.append(stream[offset:offset + usable])
        return views

    record_views = [chunkings(stream) for stream in streams]
    queries = _queries_of(entries, min_name_length)
    hits = fps = baseline_fps = 0
    for query in queries:
        needle = encoder.encode_symbols(query.encode("ascii"))
        series = chunkings(needle)
        for name, stream, views in zip(names, streams, record_views):
            truth = query in name
            if needle in stream and not truth:
                baseline_fps += 1
            hit = any(
                aligned_find(view, one_series, chunk)
                for one_series in series
                for view in views
            )
            if hit:
                if truth:
                    hits += 1
                else:
                    fps += 1
    single, double, triple = _chi(streams, n_codes)
    return FPOutcome(
        n_codes=n_codes,
        chi_single=single,
        chi_double=double,
        chi_triple=triple,
        searches=len(queries),
        true_hits=hits,
        false_positives=fps,
        baseline_false_positives=baseline_fps,
    )


def fp_chunk_encoding(
    entries: list[PhonebookEntry],
    n_codes: int,
    chunk: int = 2,
    min_name_length: int = 0,
    encoder: FrequencyEncoder | None = None,
) -> FPOutcome:
    """Table 5: two-symbol chunks encoded directly into one code each.

    Records get ``chunk`` chunkings (offsets 0 .. chunk−1, partial
    edges dropped); each chunk maps to one code, so the stored stream
    is one code per chunk and matching is plain substring search on
    the code stream.  The query's series are its own offset chunkings.
    """
    names = [entry.name for entry in entries]
    raw = [name.encode("ascii") for name in names]
    if encoder is None:
        encoder = FrequencyEncoder.train(raw, chunk, n_codes)
    record_views = [
        [encoder.encode_nonoverlapping(text, offset)
         for offset in range(chunk)]
        for text in raw
    ]
    queries = _queries_of(entries, min_name_length)
    hits = fps = 0
    for query in queries:
        pattern = query.encode("ascii")
        series = [
            encoder.encode_nonoverlapping(pattern, offset)
            for offset in range(chunk)
            if len(pattern) - offset >= chunk
        ]
        for name, views in zip(names, record_views):
            hit = any(
                one_series and one_series in view
                for one_series in series
                for view in views
            )
            if hit:
                if query in name:
                    hits += 1
                else:
                    fps += 1
    offset0_streams = [views[0] for views in record_views]
    single, double, triple = _chi(offset0_streams, n_codes)
    return FPOutcome(
        n_codes=n_codes,
        chi_single=single,
        chi_double=double,
        chi_triple=triple,
        searches=len(queries),
        true_hits=hits,
        false_positives=fps,
    )
