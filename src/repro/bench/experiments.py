"""The paper's experiments, one function per table/figure.

Each function is pure given its inputs (directory, seeds, sizes) and
returns :class:`~repro.bench.tables.TableResult` objects ready to
print.  ``benchmarks/bench_table*.py`` and ``python -m repro.bench``
share these implementations.
"""

from __future__ import annotations

import os
import random
from collections import Counter

from repro.analysis.attack import frequency_match_attack
from repro.analysis.chisq import ngram_chi_square
from repro.analysis.ngrams import ngram_counts, top_ngrams
from repro.analysis.randomness import randomness_battery
from repro.bench.falsepos import (
    fp_chunk_encoding,
    fp_symbol_chunked,
    fp_symbol_encoding,
)
from repro.bench.tables import TableResult
from repro.core.chunking import StorageLayout, query_series, record_chunks
from repro.core.config import SchemeParameters
from repro.core.dispersion import Disperser
from repro.core.encoder import FrequencyEncoder
from repro.core.index import IndexPipeline
from repro.core.scheme import EncryptedSearchableStore
from repro.data.phonebook import Directory, generate_directory
from repro.sdds.lhstar import LHStarFile

#: Default bench-scale directory size; the paper's full scale is
#: 282,965 (use ``python -m repro.bench --full``).
DEFAULT_RECORDS = int(os.environ.get("REPRO_BENCH_RECORDS", "60000"))


def bench_directory(n: int | None = None, seed: int = 2006) -> Directory:
    """The shared synthetic SF directory for all experiments."""
    return generate_directory(n or DEFAULT_RECORDS, seed=seed)


def _name_corpus(directory: Directory) -> list[bytes]:
    return [entry.name.encode("ascii") for entry in directory]


# ---------------------------------------------------------------------------
# Table 1 — raw corpus statistics
# ---------------------------------------------------------------------------

def exp_table1(directory: Directory) -> TableResult:
    """χ² of the raw directory + the most common n-grams (paper Table 1)."""
    names = [entry.name for entry in directory]
    table = TableResult(
        title=f"Table 1: chi^2-values for the synthetic SF directory "
              f"({len(names):,} entries)",
        headers=["statistic", "value"],
    )
    for n, label in ((1, "Single Letter"), (2, "Doublets"), (3, "Triplets")):
        chi, __ = ngram_chi_square(names, n)
        table.add_row(f"chi^2 ({label})", chi)
    letters = Counter(
        {k: v for k, v in ngram_counts(names, 1).items() if k.isalpha()}
    )
    for gram, share in top_ngrams(letters, 6):
        table.add_row(gram, f"{share * 100:.2f}%")
    doublets = Counter(
        {k: v for k, v in ngram_counts(names, 2).items() if k.isalpha()}
    )
    for gram, share in top_ngrams(doublets, 5):
        table.add_row(gram, f"{share * 100:.2f}%")
    triplets = Counter(
        {k: v for k, v in ngram_counts(names, 3).items() if k.isalpha()}
    )
    for gram, share in top_ngrams(triplets, 5):
        table.add_row(gram, f"{share * 100:.2f}%")
    table.notes.append(
        "synthetic corpus calibrated to the paper's shape: top letters "
        "A E N R I O, digrams AN/ER/AR/ON/IN, trigrams CHA/MAR/SON/ONG/ANG"
    )
    return table


# ---------------------------------------------------------------------------
# Table 2 — dispersion alone
# ---------------------------------------------------------------------------

def exp_table2(
    directory: Directory, k: int = 4, seed: int = 2
) -> TableResult:
    """Dispersal alone: 8-bit symbols into k 2-bit pieces (Table 2).

    "We broke the record in chunks of length one and dispersed each
    record into four dispersion records using our method with a random
    non-singular matrix."
    """
    piece_bits = 8 // k
    disperser = Disperser(k=k, piece_bits=piece_bits, seed=seed)
    streams: list[bytes] = []
    for text in _name_corpus(directory):
        per_site = disperser.disperse_stream(list(text))
        streams.extend(bytes(site) for site in per_site)
    space = 1 << piece_bits
    table = TableResult(
        title=f"Table 2: chi^2 after dispersion (chunk=1 symbol, k={k}, "
              f"random non-singular E)",
        headers=["statistic", "value"],
    )
    censuses = {}
    for n, label in ((1, "Single Letter"), (2, "Doublets"), (3, "Triplets")):
        chi, census = ngram_chi_square(streams, n, symbol_space=space)
        censuses[n] = census
        table.add_row(f"chi^2 ({label})", chi)
    for gram, share in top_ngrams(censuses[1], 4):
        table.add_row(gram, f"{share * 100:.2f}%")
    for gram, share in top_ngrams(censuses[2], 4):
        table.add_row(gram, f"{share * 100:.2f}%")
    table.notes.append(
        "compare against Table 1: dispersion alone already shrinks "
        "chi^2 by an order of magnitude but leaves visible skew"
    )
    return table


# ---------------------------------------------------------------------------
# Table 3 — redundancy removal alone
# ---------------------------------------------------------------------------

#: chunk size -> encoding counts swept (the paper's Table 3 axes).
TABLE3_SWEEP: dict[int, tuple[int, ...]] = {
    1: (2, 4, 8, 16),
    2: (8, 16, 32, 64, 128),
    4: (16, 32, 64, 128),
    6: (16, 32, 64, 128),
}


def exp_table3(
    directory: Directory,
    sweep: dict[int, tuple[int, ...]] | None = None,
) -> list[TableResult]:
    """Stage-2 alone: χ² across chunk-size × code-count (Table 3)."""
    corpus = _name_corpus(directory)
    results = []
    for chunk_size, code_counts in (sweep or TABLE3_SWEEP).items():
        table = TableResult(
            title=f"Table 3: chi^2 after pre-processing, chunk size = "
                  f"{chunk_size}",
            headers=["# encod.", "chi^2 single", "chi^2 double",
                     "chi^2 triple"],
        )
        for n_codes in code_counts:
            encoder = FrequencyEncoder.train(corpus, chunk_size, n_codes)
            streams = [
                encoder.encode_nonoverlapping(text, 0) for text in corpus
            ]
            single, __ = ngram_chi_square(streams, 1, symbol_space=n_codes)
            double, __ = ngram_chi_square(streams, 2, symbol_space=n_codes)
            triple, __ = ngram_chi_square(streams, 3, symbol_space=n_codes)
            table.add_row(n_codes, single, double, triple)
        table.notes.append(
            "expected shape: chi^2 grows with the code count and with "
            "the n-gram order; inter-chunk predictability (SMIT->H) "
            "keeps doublet/triplet chi^2 high at small chunk sizes"
        )
        results.append(table)
    return results


# ---------------------------------------------------------------------------
# Tables 4 and 5 — false positives
# ---------------------------------------------------------------------------

def exp_table4(
    directory: Directory,
    sample_size: int = 1000,
    encodings: tuple[int, ...] = (8, 16, 32),
    seed: int = 7,
) -> list[TableResult]:
    """Symbol encoding FPs, unchunked (FP1) and chunked (FP2)."""
    sample = directory.sample(sample_size, seed=seed).entries
    results = []
    for min_len, label in ((0, "(a) all entries"),
                           (5, "(b) last names longer than 5 characters")):
        table = TableResult(
            title=f"Table 4 {label}: false positives after symbol "
                  f"encoding (FP1) and after chunking, chunk size = 2 "
                  f"(FP2); {sample_size} records",
            headers=["En", "chi^2 single", "chi^2 double", "chi^2 triple",
                     "FP1", "FP2"],
        )
        for n_codes in encodings:
            outcome = fp_symbol_chunked(
                sample, n_codes, chunk=2, min_name_length=min_len
            )
            table.add_row(
                n_codes,
                outcome.chi_single,
                outcome.chi_double,
                outcome.chi_triple,
                outcome.baseline_false_positives,
                outcome.false_positives,
            )
        table.notes.append(
            "expected shape: FPs fall as the code count grows; "
            "chunking adds FPs on top of encoding (FP2 > FP1); short "
            "names cause almost all FPs (compare (a) vs (b))"
        )
        results.append(table)
    return results


def exp_table5(
    directory: Directory,
    sample_size: int = 1000,
    encodings: tuple[int, ...] = (8, 16, 32, 64),
    seed: int = 7,
) -> list[TableResult]:
    """Two-symbol chunk encoding FPs (Table 5)."""
    sample = directory.sample(sample_size, seed=seed).entries
    results = []
    for min_len, label in ((0, "(a) all entries"),
                           (5, "(b) last names longer than 5 characters")):
        table = TableResult(
            title=f"Table 5 {label}: false positives after chunk "
                  f"encoding (chunk size 2); {sample_size} records",
            headers=["Enc", "chi^2 single", "chi^2 double",
                     "chi^2 triple", "FP"],
        )
        for n_codes in encodings:
            outcome = fp_chunk_encoding(
                sample, n_codes, chunk=2, min_name_length=min_len
            )
            table.add_row(
                n_codes,
                outcome.chi_single,
                outcome.chi_double,
                outcome.chi_triple,
                outcome.false_positives,
            )
        table.notes.append(
            "n codes over 2-symbol chunks correspond to 2n per-symbol "
            "codes (paper); FPs dominated by short names, vanish in (b)"
        )
        results.append(table)
    return results


# ---------------------------------------------------------------------------
# Figures
# ---------------------------------------------------------------------------

def exp_fig5(
    directory: Directory, sample_size: int = 1000, n_codes: int = 8,
    seed: int = 7,
) -> TableResult:
    """The greedy least-loaded encoding assignment (paper Figure 5)."""
    sample = directory.sample(sample_size, seed=seed)
    encoder = FrequencyEncoder.train(_name_corpus(sample), 1, n_codes)
    table = TableResult(
        title=f"Figure 5: encoding assignment for {n_codes} possible "
              f"encodings ({sample_size} records)",
        headers=["Symbol", "Quantity", "Encoding"],
    )
    for chunk, count, code in encoder.assignment_table():
        symbol = chunk.decode("ascii")
        table.add_row("space" if symbol == " " else symbol, count, code)
    loads = encoder.bucket_loads()
    table.notes.append(
        f"bucket loads: {loads} (greedy least-loaded, ties to lowest "
        "bucket)"
    )
    return table


def exp_fig2() -> TableResult:
    """The worked search example of the paper's Figure 2."""
    rc = "415-409-7730 SCHWARZ PETER"
    pattern = " SCHWARZ "
    layout = StorageLayout.reduced(4, 2)  # two chunkings, chunk size 4
    content = rc.encode("ascii") + b"\x00"
    table = TableResult(
        title="Figure 2: search example (RI=007, chunk size 4, two "
              "chunkings, pattern ' SCHWARZ ')",
        headers=["object", "chunks"],
    )

    def show(chunks: list[bytes]) -> str:
        return ",".join(
            "(" + c.decode("ascii").replace("\x00", "0").replace(" ", "_")
            + ")"
            for c in chunks
        )

    for offset in layout.offsets:
        chunks = record_chunks(content, 4, offset)
        table.add_row(f"index record, offset {offset}", show(chunks))
    pattern_bytes = pattern.encode("ascii")
    for alignment in layout.query_alignments(len(pattern_bytes)):
        series = query_series(pattern_bytes, 4, alignment)
        table.add_row(f"search record, alignment {alignment}", show(series))
    # Where does each series hit?
    for alignment in layout.query_alignments(len(pattern_bytes)):
        series = query_series(pattern_bytes, 4, alignment)
        for group, offset in enumerate(layout.offsets):
            chunks = record_chunks(content, 4, offset)
            for position in range(len(chunks) - len(series) + 1):
                if chunks[position:position + len(series)] == series:
                    table.add_row(
                        f"hit: alignment {alignment}",
                        f"chunking offset {offset}, chunk position "
                        f"{position}",
                    )
    table.notes.append(
        "exactly one (series, chunking) pair matches a true occurrence "
        "in the reduced layout — the paper's 'only one site will "
        "report a hit'"
    )
    return table


def exp_fig3() -> TableResult:
    """The complete-scheme record layout of the paper's Figure 3."""
    params = SchemeParameters.reduced(
        8, 2, n_codes=256, dispersal=4
    )
    encoder = FrequencyEncoder.train(
        [b"ABOGADO ALEJANDRO & CATHERINE", b"SCHWARZ THOMAS",
         b"LITWIN WITOLD"],
        8, 256,
    )
    pipeline = IndexPipeline(params, encoder)
    content = b"415-409-0007 SCHWARZ PETER\x00"
    streams = pipeline.build_index_streams(content)
    table = TableResult(
        title="Figure 3: one record dispersed over "
              f"{params.index_sites_per_record} index sites "
              "(+ 1 record-store site)",
        headers=["site", "role", "stream bytes"],
    )
    table.add_row("store", "record store (AES-CTR)", len(content))
    for (group, site), stream in sorted(streams.items()):
        table.add_row(
            f"({group},{site})",
            f"chunking {group}, dispersal site {site}",
            len(stream),
        )
    table.notes.append(params.describe())
    table.notes.append(
        "index keys append chunking and site ids as the 3 least "
        "significant bits of the RID, spreading a record's index "
        "streams across LH* buckets"
    )
    return table


# ---------------------------------------------------------------------------
# Section 2.5 — storage/query trade-off
# ---------------------------------------------------------------------------

def exp_storage() -> TableResult:
    """Layout economics: index sites vs query series vs minimum query."""
    table = TableResult(
        title="Section 2.5: storage layouts and their query constraints",
        headers=["layout", "chunkings", "alignments", "min query",
                 "storage blowup", "candidate rule"],
    )
    layouts = [
        ("full s=4", StorageLayout.full(4)),
        ("full s=8", StorageLayout.full(8)),
        ("s=8, 4 sites", StorageLayout.reduced(8, 4)),
        ("s=8, 2 sites", StorageLayout.reduced(8, 2)),
        ("s=4, 2 sites", StorageLayout.reduced(4, 2)),
    ]
    for label, layout in layouts:
        rule = (
            f"all {layout.required_groups} groups"
            if layout.required_groups == layout.group_count
            else f">= {layout.required_groups} of {layout.group_count}"
        )
        table.add_row(
            label,
            layout.group_count,
            layout.alignments,
            layout.min_query_length,
            f"{layout.storage_blowup():.0f}x",
            rule,
        )
    table.notes.append(
        "paper: 4-of-8 needs queries of length >= s+1 = 9; 2-of-8 "
        "needs >= s+3 = 11; fewer sites => fewer stored chunkings but "
        "more false positives (OR rule)"
    )
    return table


# ---------------------------------------------------------------------------
# SDDS cost claims
# ---------------------------------------------------------------------------

def exp_lhstar(
    record_counts: tuple[int, ...] = (256, 1024, 4096),
    bucket_capacity: int = 32,
    seed: int = 11,
) -> TableResult:
    """LH* scaling: lookup cost stays constant as the file grows."""
    table = TableResult(
        title="LH* scaling: per-operation message cost vs file size",
        headers=["records", "buckets", "msgs/lookup (converged)",
                 "msgs/lookup (stale client)", "max hops", "scan msgs"],
    )
    rng = random.Random(seed)
    for n in record_counts:
        file = LHStarFile(bucket_capacity=bucket_capacity)
        keys = rng.sample(range(10 * n), n)
        for key in keys:
            file.insert(key, b"x" * 24)
        probe = rng.sample(keys, min(200, n))
        # Converge the default client's image first.
        for key in probe:
            file.lookup(key)
        before = file.network.stats.snapshot()
        for key in probe:
            file.lookup(key)
        converged = file.network.stats.diff(before).messages / len(probe)
        # A brand-new client with image (0, 0).
        stale = file.new_client()
        before = file.network.stats.snapshot()
        max_hops = 0
        for key in probe:
            op = stale.start_keyed("lookup", key)
            file.network.run()
            stale.take_reply(op)
        stale_cost = file.network.stats.diff(before).messages / len(probe)
        # Hop bound check via direct address math.
        from repro.sdds.hashing import client_address, forward_address
        for key in probe:
            address = client_address(key, 0, 0)
            hops = 0
            while True:
                level = file.buckets[address].level
                nxt = forward_address(key, address, level)
                if nxt is None:
                    break
                address = nxt
                hops += 1
            max_hops = max(max_hops, hops)
        before = file.network.stats.snapshot()
        file.scan(lambda record: None)
        scan_msgs = file.network.stats.diff(before).messages
        table.add_row(
            n, file.bucket_count, f"{converged:.2f}", f"{stale_cost:.2f}",
            max_hops, scan_msgs,
        )
    table.notes.append(
        "LNS96 guarantees: lookups need 2 messages (request+reply) "
        "once the image converges, at most 2 extra forwarding hops "
        "when stale; scans cost one request per bucket + one reply"
    )
    return table


def exp_holdout(
    directory: Directory,
    sweep: tuple[tuple[int, int], ...] = (
        (1, 8), (2, 32), (4, 64), (6, 128)
    ),
    seed: int = 53,
) -> TableResult:
    """Does the trained encoder generalise?  Train/held-out χ².

    The paper trains the Stage-2 encoder on "a representative part of
    the database" and deploys it on everything.  This experiment
    splits the directory in half, trains on one half and compares the
    encoded-stream χ² on both: a large held-out gap means the encoder
    memorised rare chunks instead of learning the distribution —
    which happens exactly when the code count approaches the number
    of frequent chunks.
    """
    rng = random.Random(seed)
    entries = list(directory.entries)
    rng.shuffle(entries)
    half = len(entries) // 2
    train = [e.name.encode("ascii") for e in entries[:half]]
    held = [e.name.encode("ascii") for e in entries[half:]]
    table = TableResult(
        title=f"Encoder generalisation: χ² single on train vs held-out "
              f"halves ({half} records each)",
        headers=["chunk", "codes", "chi^2 train", "chi^2 held-out",
                 "ratio"],
    )
    for chunk_size, n_codes in sweep:
        encoder = FrequencyEncoder.train(train, chunk_size, n_codes)
        chi_train, __ = ngram_chi_square(
            [encoder.encode_nonoverlapping(t, 0) for t in train],
            1, symbol_space=n_codes,
        )
        chi_held, __ = ngram_chi_square(
            [encoder.encode_nonoverlapping(t, 0) for t in held],
            1, symbol_space=n_codes,
        )
        ratio = chi_held / chi_train if chi_train else float("inf")
        table.add_row(chunk_size, n_codes, chi_train, chi_held,
                      f"{ratio:.1f}x" if ratio != float("inf")
                      else "inf")
    table.notes.append(
        "a held-out/train ratio near 1 means the frequency profile "
        "was learned, not memorised; blow-ups at high code counts "
        "bound how aggressively a deployment can size its code space "
        "from a finite training sample"
    )
    return table


def exp_elasticity(
    inserts: int = 1500,
    deletes: int = 1200,
    bucket_capacity: int = 8,
    seed: int = 47,
) -> TableResult:
    """The abstract's claim, measured: the file 'grows and shrinks
    with the storage needs of applications, but transparently'."""
    file = LHStarFile(bucket_capacity=bucket_capacity, shrink=True)
    rng = random.Random(seed)
    keys = [rng.randrange(10 ** 9) for __ in range(inserts)]
    table = TableResult(
        title="Elasticity: LH* bucket count tracking the record count",
        headers=["phase", "records", "buckets", "load factor",
                 "msgs in phase"],
    )

    def snapshot(phase: str, delta) -> None:
        buckets = file.coordinator.bucket_count
        load = file.record_count / (buckets * bucket_capacity)
        table.add_row(phase, file.record_count, buckets,
                      f"{load:.2f}", delta.messages)

    before = file.network.stats.snapshot()
    for key in keys:
        file.insert(key, b"elastic-record\x00")
    snapshot("grow", file.network.stats.diff(before))
    before = file.network.stats.snapshot()
    for key in keys[:deletes]:
        file.delete(key)
    snapshot("shrink", file.network.stats.diff(before))
    before = file.network.stats.snapshot()
    for key in keys[:deletes // 2]:
        file.insert(key, b"elastic-record\x00")
    snapshot("regrow", file.network.stats.diff(before))
    survivors = keys[deletes:] + keys[:deletes // 2]
    assert all(file.lookup(k) is not None for k in survivors)
    table.notes.append(
        "shrink retires the most recent split's bucket back into its "
        "partner (tombstones redirect stale clients); regrowth "
        "revives tombstones in place — all survivors verified "
        "readable after every phase"
    )
    return table


# ---------------------------------------------------------------------------
# End-to-end encrypted search
# ---------------------------------------------------------------------------

def exp_search_e2e(
    directory: Directory,
    n_records: int = 200,
    n_queries: int = 40,
    seed: int = 13,
) -> TableResult:
    """Full-scheme search over the simulator: cost and precision."""
    sample = directory.sample(n_records, seed=seed)
    corpus = _name_corpus(sample)
    configs = [
        ("s=4 full, raw ECB", SchemeParameters.full(4), None),
        (
            "s=4 full + 64 codes",
            SchemeParameters.full(4, n_codes=64),
            64,
        ),
        (
            "s=4 full + 64 codes + k=2",
            SchemeParameters.full(4, n_codes=64, dispersal=2),
            64,
        ),
        (
            "s=8 4-sites + 256 codes + k=4",
            SchemeParameters.reduced(8, 4, n_codes=256, dispersal=4),
            256,
        ),
    ]
    rng = random.Random(seed)
    queries = [
        entry.last_name
        for entry in rng.sample(sample.entries, n_queries)
    ]
    table = TableResult(
        title=f"End-to-end encrypted search ({n_records} records, "
              f"{len(queries)} queries)",
        headers=["configuration", "recall", "precision", "candidates",
                 "msgs/query", "KB/query", "ms/query (sim)"],
    )
    for label, params, n_codes in configs:
        encoder = (
            FrequencyEncoder.train(corpus, params.chunk_size, n_codes)
            if n_codes
            else None
        )
        store = EncryptedSearchableStore(params, encoder=encoder)
        for entry in sample:
            store.put(entry.rid, entry.record_text)
        total_candidates = total_matches = total_truth = 0
        msgs = kb = sim_seconds = 0.0
        recall_ok = True
        for query in queries:
            if len(query) < params.min_query_length:
                continue
            truth = {
                entry.rid
                for entry in sample
                if query in entry.record_text
            }
            result = store.search(query)
            if not truth <= result.matches:
                recall_ok = False
            total_candidates += len(result.candidates)
            total_matches += len(result.matches)
            total_truth += len(truth)
            msgs += result.cost.messages
            kb += result.cost.bytes / 1024
            sim_seconds += result.elapsed
        executed = sum(
            1 for q in queries if len(q) >= params.min_query_length
        )
        if executed == 0:
            table.add_row(label, "-", "-", 0, "-", "-",
                          "- (all queries below min length)")
            continue
        precision = (
            total_matches / total_candidates if total_candidates else 1.0
        )
        table.add_row(
            label,
            "100%" if recall_ok else "BROKEN",
            f"{precision * 100:.1f}%",
            total_candidates,
            f"{msgs / executed:.1f}",
            f"{kb / executed:.1f}",
            f"{sim_seconds / executed * 1000:.1f}",
        )
    table.notes.append(
        "recall must always be 100% (the scheme's invariant); "
        "precision falls as Stage 2/3 remove information"
    )
    return table


# ---------------------------------------------------------------------------
# Ablation: stage on/off grid
# ---------------------------------------------------------------------------

def _unpack_stream(stream: bytes, width: int) -> list[int]:
    """Inverse of the pipeline's fixed-width packing."""
    return [
        int.from_bytes(stream[i:i + width], "big")
        for i in range(0, len(stream), width)
    ]


def exp_ablation(
    directory: Directory,
    n_records: int = 600,
    seed: int = 17,
) -> TableResult:
    """The central trade-off: index randomness vs attacker success.

    For each stage combination, build the index streams of a sample
    and measure, on what a *single site* stores: the χ² of the stored
    values over their own domain, the distinct/total ratio (how much
    repetition structure an ECB attacker can see), and the accuracy of
    a rank-matching frequency attacker with a perfect language model.
    """
    sample = directory.sample(n_records, seed=seed)
    corpus = _name_corpus(sample)
    configs = [
        ("Stage 1 only (raw ECB)", SchemeParameters.full(4), None),
        ("+ Stage 2 (64 codes)",
         SchemeParameters.full(4, n_codes=64), 64),
        ("+ Stage 3 (k=2)",
         SchemeParameters.full(4, dispersal=2), None),
        ("+ Stages 2+3",
         SchemeParameters.full(4, n_codes=64, dispersal=2), 64),
    ]
    table = TableResult(
        title="Ablation: single-site index-stream statistics per stage "
              "combination",
        headers=["configuration", "domain bits", "chi^2 (values)",
                 "distinct/total", "attack: stream", "attack: codebook"],
    )
    for label, params, n_codes in configs:
        encoder = (
            FrequencyEncoder.train(corpus, params.chunk_size, n_codes)
            if n_codes
            else None
        )
        pipeline = IndexPipeline(params, encoder)
        site0_values: list[int] = []
        plain_values: list[int] = []
        for text in corpus:
            content = text + b"\x00"
            streams = pipeline.build_index_streams(content)
            site0_values.extend(
                _unpack_stream(streams[(0, 0)], params.piece_width)
            )
            for chunk in record_chunks(content, params.chunk_size, 0):
                plain_values.append(pipeline.chunk_value(chunk))
        domain_bits = params.piece_bits
        if domain_bits <= 16:
            chi, __ = ngram_chi_square(
                [tuple(site0_values)], 1, symbol_space=1 << domain_bits
            )
            chi_cell = f"{chi:,.4g}"
        else:
            chi_cell = "n/a (sparse)"
        distinct = len(set(site0_values)) / len(site0_values)
        if params.dispersal == 1:
            prp = pipeline._prps[0]
            cipher_values = (
                [prp.encrypt(v) for v in plain_values]
                if prp is not None else list(plain_values)
            )
            model = Counter(plain_values)
            outcome = frequency_match_attack(
                cipher_values,
                model,
                truth=(prp.decrypt if prp is not None else (lambda v: v)),
            )
            attack_stream = f"{outcome.symbol_accuracy * 100:.1f}%"
            attack_code = f"{outcome.codebook_accuracy * 100:.1f}%"
        else:
            attack_stream = "n/a (pieces)"
            attack_code = "n/a (pieces)"
        table.add_row(
            label, domain_bits, chi_cell, f"{distinct:.3f}",
            attack_stream, attack_code,
        )
    table.notes.append(
        "the attacker has a perfect chunk-frequency model of the "
        "plaintext (worst case); on Stage-2 rows a 'correct' guess "
        "only recovers the lossy bucket code (many plaintext chunks "
        "per code), not the plaintext itself"
    )
    table.notes.append(
        "Stage 3 removes the whole-chunk view from every single site; "
        "the remaining chi^2 skew is the Stage-2 bucket imbalance "
        "showing through the linear map — the paper's 'cautious "
        "optimism' caveat"
    )
    return table


# ---------------------------------------------------------------------------
# Randomness battery (the paper's announced §8 follow-up)
# ---------------------------------------------------------------------------

def _bitpack(values: list[int], bits: int) -> bytes:
    """Pack values tightly at ``bits`` bits each (no byte padding)."""
    accumulator = 0
    filled = 0
    out = bytearray()
    for value in values:
        accumulator = (accumulator << bits) | value
        filled += bits
        while filled >= 8:
            filled -= 8
            out.append((accumulator >> filled) & 0xFF)
    if filled:
        out.append((accumulator << (8 - filled)) & 0xFF)
    return bytes(out)


def exp_randomness(
    directory: Directory, n_records: int = 400, seed: int = 23
) -> TableResult:
    """NIST-style battery on the stored index streams per config.

    The stream values are bit-packed tightly (a 6-bit code contributes
    6 bits, a 3-bit dispersed piece 3 bits) — grading the information
    the site actually stores rather than byte-padding artefacts.
    """
    sample = directory.sample(n_records, seed=seed)
    corpus = _name_corpus(sample)
    configs = [
        ("raw ASCII names", None, None),
        ("Stage 1 only (ECB, s=4)", SchemeParameters.full(4), None),
        ("Stages 1+2 (64 codes)",
         SchemeParameters.full(4, n_codes=64), 64),
        ("Stages 1+2+3 (64 codes, k=2)",
         SchemeParameters.full(4, n_codes=64, dispersal=2), 64),
    ]
    table = TableResult(
        title="Randomness battery (NIST SP-800-22 style) on site-0 "
              "index bits",
        headers=["configuration", "passed", "failed", "worst test",
                 "worst p"],
    )
    for label, params, n_codes in configs:
        if params is None:
            blob = b"".join(corpus)
        else:
            encoder = (
                FrequencyEncoder.train(corpus, params.chunk_size, n_codes)
                if n_codes
                else None
            )
            pipeline = IndexPipeline(params, encoder)
            values: list[int] = []
            for text in corpus:
                stream = pipeline.build_index_streams(text + b"\x00")[(0, 0)]
                values.extend(_unpack_stream(stream, params.piece_width))
            blob = _bitpack(values, params.piece_bits)
        results = randomness_battery(blob)
        passed = sum(1 for r in results if r.passed)
        worst = min(results, key=lambda r: r.p_value)
        table.add_row(
            label, passed, len(results) - passed, worst.name,
            f"{worst.p_value:.3g}",
        )
    table.notes.append(
        "raw text fails everything; ECB of raw chunks produces "
        "random-looking *bits* (while still leaking chunk repetition, "
        "which bit-level tests cannot see); Stage-2/3 streams inherit "
        "the bucket-load imbalance and fail the frequency tests — "
        "the paper's own 'the results do (not yet?) justify more than "
        "cautious optimism'"
    )
    return table
