"""Standalone experiment runner: ``python -m repro.bench [names...]``.

Runs the paper's experiments at bench scale by default, or at the
paper's full 282,965-record scale with ``--full``.  With no names, all
experiments run in paper order.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import experiments, extensions
from repro.data.phonebook import SF_DIRECTORY_SIZE


def _run(name: str, directory, args) -> list:
    exp = experiments
    if name == "table1":
        return [exp.exp_table1(directory)]
    if name == "table2":
        return [exp.exp_table2(directory)]
    if name == "table3":
        return exp.exp_table3(directory)
    if name == "table4":
        return exp.exp_table4(directory, sample_size=args.sample)
    if name == "table5":
        return exp.exp_table5(directory, sample_size=args.sample)
    if name == "fig2":
        return [exp.exp_fig2()]
    if name == "fig3":
        return [exp.exp_fig3()]
    if name == "fig5":
        return [exp.exp_fig5(directory, sample_size=args.sample)]
    if name == "storage":
        return [exp.exp_storage()]
    if name == "lhstar":
        return [exp.exp_lhstar()]
    if name == "elasticity":
        return [exp.exp_elasticity()]
    if name == "holdout":
        return [exp.exp_holdout(directory)]
    if name == "e2e":
        return [exp.exp_search_e2e(directory)]
    if name == "ablation":
        return [exp.exp_ablation(directory)]
    if name == "randomness":
        return [exp.exp_randomness(directory)]
    if name == "wordsearch":
        return [extensions.exp_wordsearch(directory)]
    if name == "compression":
        return [extensions.exp_compression(directory)]
    if name == "collusion":
        return [extensions.exp_collusion(directory)]
    if name == "edge":
        return [extensions.exp_edge_defense(directory)]
    if name == "attack":
        return [extensions.exp_stage2_attack(directory)]
    if name == "warsaw":
        return [extensions.exp_warsaw(sample_size=args.sample)]
    if name == "designs":
        return [extensions.exp_index_designs(directory)]
    raise SystemExit(f"unknown experiment {name!r}")


ALL = [
    "table1", "table2", "table3", "table4", "table5",
    "fig2", "fig3", "fig5",
    "storage", "lhstar", "elasticity", "e2e", "ablation", "randomness",
    "wordsearch", "compression", "collusion", "edge", "attack",
    "warsaw", "holdout", "designs",
]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument("names", nargs="*", default=ALL,
                        help=f"experiments to run (default: all of {ALL})")
    parser.add_argument("--full", action="store_true",
                        help="use the paper-scale 282,965-record directory")
    parser.add_argument("--records", type=int, default=None,
                        help="directory size override")
    parser.add_argument("--sample", type=int, default=1000,
                        help="sample size for the FP experiments")
    parser.add_argument("--csv", metavar="DIR", default=None,
                        help="also write each table as CSV into DIR")
    args = parser.parse_args(argv)

    size = args.records or (
        SF_DIRECTORY_SIZE if args.full else experiments.DEFAULT_RECORDS
    )
    start = time.time()
    directory = experiments.bench_directory(size)
    print(f"[directory: {len(directory):,} synthetic entries, "
          f"{time.time() - start:.1f}s]\n")
    csv_dir = None
    if args.csv:
        import pathlib

        csv_dir = pathlib.Path(args.csv)
        csv_dir.mkdir(parents=True, exist_ok=True)
    for name in (args.names or ALL):
        start = time.time()
        for index, table in enumerate(_run(name, directory, args)):
            print(table.render())
            print()
            if csv_dir is not None:
                from repro.bench.tables import slugify, to_csv

                suffix = f"-{index}" if index else ""
                path = csv_dir / f"{name}{suffix}.csv"
                path.write_text(to_csv(table))
        print(f"[{name}: {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
