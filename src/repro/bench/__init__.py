"""Benchmark harness: the paper's experiments as reusable functions.

Every table and figure of the paper's evaluation has a function here
returning a :class:`~repro.bench.tables.TableResult`; the pytest
benchmarks under ``benchmarks/`` and the standalone CLI
(``python -m repro.bench``) both call into this package, so the two
entry points can never drift apart.

Dataset size: the paper uses the 282,965-entry SF directory.  The
pytest benches default to a 60,000-entry synthetic directory to keep
the suite responsive; ``python -m repro.bench --full`` (or the
``REPRO_BENCH_RECORDS`` environment variable) runs paper-scale.
"""

from repro.bench.tables import TableResult, render_table
from repro.bench import experiments

__all__ = ["TableResult", "render_table", "experiments"]
