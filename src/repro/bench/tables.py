"""Paper-style table rendering for the bench harness."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TableResult:
    """One rendered experiment: a title, headers, rows and footnotes."""

    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        self.rows.append([_fmt(cell) for cell in cells])

    def render(self) -> str:
        return render_table(self)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:,.2f}"
        return f"{cell:.6g}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def to_csv(table: TableResult) -> str:
    """CSV rendering (headers + rows) for downstream plotting."""
    import csv
    import io

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(table.headers)
    for row in table.rows:
        writer.writerow(row)
    return buffer.getvalue()


def slugify(title: str) -> str:
    """A filesystem-safe slug of a table title."""
    keep = []
    for ch in title.lower():
        if ch.isalnum():
            keep.append(ch)
        elif keep and keep[-1] != "-":
            keep.append("-")
    return "".join(keep).strip("-")[:80]


def render_table(table: TableResult) -> str:
    """Fixed-width text rendering, one experiment per block."""
    widths = [len(h) for h in table.headers]
    for row in table.rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [table.title, "=" * len(table.title)]
    header = "  ".join(
        h.ljust(widths[i]) for i, h in enumerate(table.headers)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in table.rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    for note in table.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)
