"""Experiments for the paper's §8 extensions built in this repo.

Three follow-ups the paper announces are implemented and measured here:

* :func:`exp_wordsearch` — the Song-Wagner-Perrig adaptation vs the
  substring scheme, on the same corpus and query workload;
* :func:`exp_compression` — Manber-style searchable (lossy) pair
  compression as an alternative Stage 2;
* :func:`exp_collusion` — how much structure returns when dispersal
  sites collude (the paper's §1 caveat, quantified).
"""

from __future__ import annotations

import random

from repro.analysis.collusion import collusion_sweep
from repro.bench.tables import TableResult
from repro.core.compression import PairCompressor
from repro.core.config import SchemeParameters
from repro.core.dispersion import Disperser
from repro.core.encoder import FrequencyEncoder
from repro.core.scheme import EncryptedSearchableStore
from repro.core.wordsearch import EncryptedWordStore
from repro.data.phonebook import Directory


def exp_wordsearch(
    directory: Directory,
    n_records: int = 200,
    n_queries: int = 40,
    seed: int = 29,
) -> TableResult:
    """SWP word search vs the substring scheme, head to head."""
    sample = directory.sample(n_records, seed=seed)
    corpus = [entry.name.encode("ascii") for entry in sample]
    rng = random.Random(seed)
    # Chunk-scheme queries must meet the layout minimum (4 symbols);
    # SWP has no such limit (it can look up "YU"), which the note
    # records as a qualitative difference.
    candidates = [e.last_name for e in sample.entries
                  if len(e.last_name) >= 4]
    queries = rng.sample(candidates, min(n_queries, len(candidates)))

    table = TableResult(
        title=f"Word search (SWP, paper §8) vs substring search "
              f"({n_records} records, {n_queries} last-name queries)",
        headers=["scheme", "recall", "precision", "index bytes/record",
                 "msgs/query", "finds substrings?"],
    )

    # Substring scheme (chunk pipeline).
    params = SchemeParameters.full(4, n_codes=64)
    chunk_store = EncryptedSearchableStore(
        params,
        encoder=FrequencyEncoder.train(corpus, 4, 64),
    )
    word_store = EncryptedWordStore(b"wordsearch-bench")
    for entry in sample:
        chunk_store.put(entry.rid, entry.record_text)
        word_store.put(entry.rid, entry.record_text)

    def evaluate(search, truth_of):
        candidates = matches = truths = msgs = 0
        recall_ok = True
        for query in queries:
            truth = truth_of(query)
            result = search(query)
            if not truth <= result.matches:
                recall_ok = False
            found = result.matches
            candidates += len(getattr(result, "candidates", found))
            matches += len(found & truth)
            truths += len(truth)
            msgs += result.cost.messages
        precision = matches / candidates if candidates else 1.0
        return recall_ok, precision, msgs / len(queries)

    substring_truth = lambda q: {
        e.rid for e in sample if q in e.record_text
    }
    word_truth = lambda q: {
        e.rid for e in sample
        if q in e.record_text.split("%")[0].split(" ")
    }

    recall_ok, precision, msgs = evaluate(
        lambda q: chunk_store.search(q), substring_truth
    )
    chunk_bytes = chunk_store.footprint().index_bytes / n_records
    table.add_row(
        "substring (chunks, 64 codes)",
        "100%" if recall_ok else "BROKEN",
        f"{precision * 100:.1f}%",
        f"{chunk_bytes:.0f}",
        f"{msgs:.1f}",
        "yes",
    )

    recall_ok, precision, msgs = evaluate(
        lambda q: word_store.search(q), word_truth
    )
    word_bytes = sum(
        len(r.content) for r in word_store.index_file.all_records()
    ) / n_records
    table.add_row(
        "word (SWP)",
        "100%" if recall_ok else "BROKEN",
        f"{precision * 100:.1f}%",
        f"{word_bytes:.0f}",
        f"{msgs:.1f}",
        "no (whole words only)",
    )
    table.notes.append(
        "SWP: cryptographic per-cell FP rate (2^-32), compact index, "
        "no minimum query length (it can look up 'YU'), but no "
        "substring/pattern queries — the paper's §1 motivation for "
        "the chunk scheme"
    )
    return table


def exp_compression(
    directory: Directory,
    n_records: int = 600,
    seed: int = 31,
) -> TableResult:
    """Searchable pair compression as an alternative Stage 2."""
    sample = directory.sample(n_records, seed=seed)
    corpus = [entry.name.encode("ascii") for entry in sample]
    queries = sorted({e.last_name for e in sample.entries})
    table = TableResult(
        title=f"Searchable compression ([M97] direction, §8) on "
              f"{n_records} records, {len(queries)} queries",
        headers=["configuration", "bytes out/in", "FPs",
                 "recall"],
    )
    configs = [
        ("pairs only (lossless)", dict(max_pairs=64)),
        ("pairs + lossy 64 buckets",
         dict(max_pairs=64, lossy_codes=64)),
        ("pairs + lossy 32 buckets",
         dict(max_pairs=64, lossy_codes=32)),
        ("pairs + lossy 16 buckets",
         dict(max_pairs=64, lossy_codes=16)),
    ]
    for label, options in configs:
        compressor = PairCompressor.train(corpus, **options)
        encoded = [compressor.encode(text) for text in corpus]
        fps = 0
        recall_ok = True
        for query in queries:
            pattern = query.encode("ascii")
            for text, stream in zip(corpus, encoded):
                hit = compressor.search(stream, pattern)
                truth = pattern in text
                if truth and not hit:
                    recall_ok = False
                if hit and not truth:
                    fps += 1
        table.add_row(
            label,
            f"{compressor.compression_ratio(corpus):.2f}",
            fps,
            "100%" if recall_ok else "BROKEN",
        )
    table.notes.append(
        "exactly the paper's stated goal: 'very good, but not perfect "
        "precision and 100% recall' — compression and redundancy "
        "removal compose"
    )
    return table


def exp_index_designs(
    directory: Directory,
    n_records: int = 200,
    seed: int = 61,
) -> TableResult:
    """The three index designs, head to head.

    The paper builds the chunk scheme (§5) and names two alternatives
    it wants explored (§8): Song-et-al word search and searchable
    compression.  Same corpus, same query workload, the full triangle
    of trade-offs: query power, precision, storage and wire cost.
    """
    from repro.core.compressed_index import CompressedSearchStore

    sample = directory.sample(n_records, seed=seed)
    corpus = [e.name.encode("ascii") for e in sample]
    rng = random.Random(seed)
    whole_words = [
        e.last_name for e in rng.sample(sample.entries, 30)
        if len(e.last_name) >= 4
    ]
    fragments = [w[1:-1] for w in whole_words if len(w) >= 6]

    params = SchemeParameters.full(4, n_codes=64)
    chunk_store = EncryptedSearchableStore(
        params, encoder=FrequencyEncoder.train(corpus, 4, 64)
    )
    word_store = EncryptedWordStore(b"designs-bench")
    compressed = CompressedSearchStore(b"designs-bench", corpus)
    for entry in sample:
        chunk_store.put(entry.rid, entry.record_text)
        word_store.put(entry.rid, entry.record_text)
        compressed.put(entry.rid, entry.record_text)

    def truth(query: str) -> set[int]:
        return {e.rid for e in sample if query in e.record_text}

    def precision_of(results, queries) -> float:
        candidates = sum(
            len(getattr(r, "candidates", r.matches)) for r in results
        )
        matched = sum(
            len(r.matches & truth(q)) for r, q in zip(results, queries)
        )
        return matched / candidates if candidates else 1.0

    table = TableResult(
        title=f"Index designs head to head ({n_records} records)",
        headers=["design", "index KB", "word precision",
                 "fragment precision", "fragment recall", "msgs/query"],
    )

    def add_design(label, kb, search, fragments_supported=True):
        word_results = [search(q) for q in whole_words]
        msgs = sum(r.cost.messages for r in word_results) / max(
            len(word_results), 1
        )
        if fragments_supported:
            frag_results = [search(q) for q in fragments]
            frag_recall = all(
                truth(q) <= r.matches
                for q, r in zip(fragments, frag_results)
            )
            frag_precision = (
                f"{precision_of(frag_results, fragments) * 100:.0f}%"
            )
            frag_recall_cell = "100%" if frag_recall else "BROKEN"
        else:
            frag_precision = "n/a (no fragments)"
            frag_recall_cell = "n/a"
        table.add_row(
            label,
            f"{kb:.1f}",
            f"{precision_of(word_results, whole_words) * 100:.0f}%",
            frag_precision,
            frag_recall_cell,
            f"{msgs:.0f}",
        )

    add_design(
        "chunks (§5, 64 codes)",
        chunk_store.footprint().index_bytes / 1024,
        chunk_store.search,
    )
    add_design(
        "words (SWP, §8)",
        sum(len(r.content)
            for r in word_store.index_file.all_records()) / 1024,
        word_store.search,
        fragments_supported=False,
    )
    add_design(
        "compressed ([M97], §8)",
        compressed.index_bytes() / 1024,
        compressed.search,
    )
    table.notes.append(
        "chunks: any pattern, highest storage; SWP: words only, "
        "cryptographic precision; compression: any pattern at "
        "sub-record storage but code-level leakage and no dispersion "
        "stage"
    )
    return table


def exp_warsaw(
    sample_size: int = 1000,
    encodings: tuple[int, ...] = (8, 16, 32),
    seed: int = 7,
) -> TableResult:
    """The paper's counterfactual, run: SF vs Warsaw phonebook FPs.

    "…which would indicate that the Warsaw phonebook might have been
    a better choice for our database."  Same Table-4 FP1/FP2
    methodology on two corpora: the SF-style directory (heavy short
    Asian surnames) and a Polish directory of long surnames.
    """
    from repro.bench.falsepos import fp_symbol_chunked
    from repro.data.phonebook import generate_directory

    table = TableResult(
        title=f"The Warsaw counterfactual: Table-4 false positives by "
              f"corpus ({sample_size} records)",
        headers=["En", "SF FP1", "SF FP2", "Warsaw FP1", "Warsaw FP2"],
    )
    sf = generate_directory(20_000, seed=2006, style="sf").sample(
        sample_size, seed=seed
    ).entries
    warsaw = generate_directory(20_000, seed=2006, style="warsaw").sample(
        sample_size, seed=seed
    ).entries
    for n_codes in encodings:
        sf_outcome = fp_symbol_chunked(sf, n_codes, chunk=2)
        warsaw_outcome = fp_symbol_chunked(warsaw, n_codes, chunk=2)
        table.add_row(
            n_codes,
            sf_outcome.baseline_false_positives,
            sf_outcome.false_positives,
            warsaw_outcome.baseline_false_positives,
            warsaw_outcome.false_positives,
        )
    table.notes.append(
        "long Polish surnames remove the short-name collision mass: "
        "the paper's hunch, confirmed quantitatively"
    )
    return table


def exp_stage2_attack(
    directory: Directory,
    n_records: int = 500,
    seed: int = 43,
) -> TableResult:
    """Unigram vs bigram attacks on Stage-2-encoded ECB streams.

    Table 3's warning made operational: the encoder equalises unigram
    frequencies (starving rank matching) but leaves bigram structure
    ("SMIT"->"H"), which a classical substitution solver exploits.
    The attacker holds perfect plaintext-code statistics — the paper's
    insider — and attacks one chunking's stored stream.
    """
    from collections import Counter

    from repro.analysis.attack import (
        bigram_hillclimb_attack,
        frequency_match_attack,
    )
    from repro.core.chunking import record_chunks
    from repro.core.index import IndexPipeline

    sample = directory.sample(n_records, seed=seed)
    corpus = [entry.name.encode("ascii") for entry in sample]
    table = TableResult(
        title=f"Stage-2 residual structure under attack "
              f"({n_records} records, s=2)",
        headers=["codes", "unigram attack", "bigram attack",
                 "codebook recovered"],
    )
    for n_codes in (16, 64):
        params = SchemeParameters.full(2, n_codes=n_codes)
        encoder = FrequencyEncoder.train(corpus, 2, n_codes)
        pipeline = IndexPipeline(params, encoder)
        prp = pipeline._prps[0]
        plain_records = []
        cipher_records = []
        for text in corpus:
            codes = [
                pipeline.chunk_value(chunk)
                for chunk in record_chunks(text + b"\x00", 2, 0)
            ]
            plain_records.append(codes)
            cipher_records.append([prp.encrypt(v) for v in codes])
        unigrams = Counter(c for r in plain_records for c in r)
        bigrams = Counter(
            (r[i], r[i + 1])
            for r in plain_records
            for i in range(len(r) - 1)
        )
        flat = [c for r in cipher_records for c in r]
        unigram_outcome = frequency_match_attack(
            flat, unigrams, truth=prp.decrypt
        )
        bigram_outcome = bigram_hillclimb_attack(
            cipher_records, unigrams, bigrams, truth=prp.decrypt,
            iterations=3000, restarts=2, seed=seed,
        )
        table.add_row(
            n_codes,
            f"{unigram_outcome.symbol_accuracy * 100:.1f}%",
            f"{bigram_outcome.symbol_accuracy * 100:.1f}%",
            f"{bigram_outcome.codebook_accuracy * 100:.1f}%",
        )
    table.notes.append(
        "a 'recovered' code is still a lossy bucket (many chunks per "
        "code); the bigram solver's gain over rank matching is the "
        "operational cost of the doublet chi^2 the paper measures in "
        "Table 3 — and the argument for larger chunks + dispersion"
    )
    return table


def exp_edge_defense(
    directory: Directory,
    n_records: int = 150,
    seed: int = 41,
) -> TableResult:
    """The §2.1 boundary-chunk trade-off, quantified.

    Padded edge chunks (e.g. ``(0,0,0,r0)``) have a single-symbol
    effective alphabet and fall to an elementary frequency attack; the
    paper's counter-measure — not storing them — 'limits our search
    capability, but is otherwise perfectly feasible'.  This experiment
    measures both sides: the boundary attacker's accuracy with the
    chunks present, and the recall lost on edge-touching queries with
    the chunks dropped.
    """
    from collections import Counter

    from repro.analysis.attack import partial_chunk_attack
    from repro.core.index import IndexPipeline

    sample = directory.sample(n_records, seed=seed)
    table = TableResult(
        title="Section 2.1: padded edge chunks — attack vs search "
              f"capability ({n_records} records, s=4)",
        headers=["configuration", "boundary attack", "interior recall",
                 "edge-suffix recall"],
    )
    for drop in (False, True):
        params = SchemeParameters.full(4, drop_partial_chunks=drop)
        store = EncryptedSearchableStore(params)
        for entry in sample:
            store.put(entry.rid, entry.record_text)
        # Boundary attack: the offset-1 chunking's first chunk is
        # (0,0,0,r0) — its chunk value IS the first symbol, so the
        # stored stream is an ECB over a 1-symbol alphabet.
        if drop:
            attack_cell = "n/a (chunks not stored)"
        else:
            pipeline = IndexPipeline(params)
            prp = pipeline._prps[1]
            first_symbols = [
                entry.record_text.encode("ascii")[0] for entry in sample
            ]
            cipher = [prp.encrypt(s) for s in first_symbols]
            outcome = partial_chunk_attack(
                cipher, Counter(first_symbols),
                truth=lambda c: prp.decrypt(c),
            )
            attack_cell = f"{outcome.symbol_accuracy * 100:.1f}%"
        interior_found = interior_total = 0
        edge_found = edge_total = 0
        for entry in sample.entries[:60]:
            text = entry.record_text
            interior = text[5:12]
            interior_total += 1
            if entry.rid in store.search(interior).matches:
                interior_found += 1
            # End-anchored queries must match into the zero-padded
            # final chunks — exactly what the counter-measure drops.
            suffix = text[-6:]
            edge_total += 1
            if entry.rid in store.search(suffix,
                                         anchor_end=True).matches:
                edge_found += 1
        table.add_row(
            "keep partial chunks" if not drop else "drop partial chunks",
            attack_cell,
            f"{interior_found / interior_total * 100:.0f}%",
            f"{edge_found / edge_total * 100:.0f}%",
        )
    table.notes.append(
        "dropping the padded chunks kills the boundary frequency "
        "attack outright; the paper expects it to 'limit our search "
        "capability', but the measurement refines that: for every "
        "content length exactly one chunking's boundary lands on the "
        "record end, so its final chunk is complete and survives the "
        "drop — under the threshold aggregation rule every supported "
        "query (length >= s, incl. end-anchored) keeps 100% recall. "
        "The only capability actually lost is the sub-s short-string "
        "kludge of §2.3, which needs the padded chunks."
    )
    return table


def exp_collusion(
    directory: Directory,
    n_records: int = 2000,
    seed: int = 37,
) -> TableResult:
    """Dispersal-site collusion: structure vs coalition size."""
    sample = directory.sample(min(n_records, len(directory)), seed=seed)
    values: list[int] = []
    for entry in sample:
        values.extend(entry.name.encode("ascii"))
    disperser = Disperser(k=4, piece_bits=2, seed=2)
    table = TableResult(
        title="Collusion among dispersal sites (k=4, g=2, "
              "paper §1 caveat)",
        headers=["coalition", "known bits", "chi^2 (joint)",
                 "distinct/total", "reconstructs?"],
    )
    seen_sizes = set()
    for view in collusion_sweep(disperser, values,
                                max_coalitions_per_size=1):
        if len(view.sites) in seen_sizes:
            continue
        seen_sizes.add(len(view.sites))
        table.add_row(
            f"{len(view.sites)} of {disperser.k} sites "
            f"{list(view.sites)}",
            f"{view.known_bits}/8",
            view.chi_square,
            f"{view.distinct_ratio:.4f}",
            "yes" if view.full_reconstruction else "no",
        )
    table.notes.append(
        "every additional colluder pins down more bits of each chunk; "
        "the full coalition reduces the scheme to bare ECB — the SDDS "
        "defence is that nodes cannot locate their co-holders"
    )
    return table
