"""The live (socket) backend of the :class:`Network` contract.

:class:`LiveNetwork` is a drop-in for the simulated
:class:`repro.net.simulator.Network`: the *same* LH* protocol actors
run unmodified, but buckets and the coordinator live in separate
processes (see :mod:`repro.net.serve`) and messages cross real TCP
connections in :mod:`repro.net.wire` frames.  The client process keeps
only client actors locally; ``attach`` of a bucket or coordinator
turns into an (unbilled) control message to the hosting site, and the
local protocol object stays behind as an inert shadow.

``run()`` keeps the simulator's run-to-quiescence meaning over real
sockets: pump connections, fire due wall-clock timers, dispatch
inbound messages — and, once locally idle, take a cluster-wide census
of conservation counters (messages sent vs delivered, buffered
messages, armed timers).  The network is quiescent when two
consecutive censuses agree and balance.  Each census also folds the
sites' :class:`~repro.net.stats.NetworkStats` deltas into the local
``stats`` object, so snapshot/diff costing — and therefore billing —
works exactly like the simulator: every message is billed once, at
its sender's site, at its declared size.

Scope (v1): plain :class:`~repro.sdds.lhstar.LHStarFile` with
``split_policy="uncontrolled"`` and ``shrink=False``; crash/restore of
hosted nodes (the PR-1 retry and PR-3 crash-detection paths run over
real sockets); no partitions, no LH*RS parity groups.  Unsupported
configurations raise :class:`LiveUnsupportedError` at attach time.

>>> # quickstart (see docs/SERVING.md):
>>> # with LiveCluster(buckets=4) as cluster:
>>> #     network = cluster.connect()
>>> #     file = LHStarFile(network=network)
>>> #     file.insert(1, b"payload")
"""

from __future__ import annotations

import heapq
import itertools
import os
import select
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Hashable

from repro.errors import ReproError, UnknownNodeError
from repro.net import wire
from repro.net.serve import ClusterConfig, peer_of
from repro.net.simulator import (
    LatencyModel,
    Message,
    Node,
    Timer,
    wire_checksum,
)
from repro.net.stats import NetworkStats


class LiveBackendError(ReproError, RuntimeError):
    """The live transport failed operationally (connection lost,
    control error, quiescence timeout, site process died)."""


class LiveUnsupportedError(LiveBackendError):
    """The requested configuration or operation is outside the live
    backend's v1 scope (parity groups, shrink, partitions, ...)."""


#: How long ``LiveNetwork.run`` may chase quiescence before giving up.
DEFAULT_RUN_TIMEOUT = 60.0
#: Control-message round-trip allowance.
CTRL_TIMEOUT = 15.0
#: Socket-level connect retry window while sites boot.
CONNECT_TIMEOUT = 30.0


class _Conn:
    """One client connection to a site process."""

    def __init__(self, key: tuple, sock: socket.socket) -> None:
        self.key = key
        self.sock = sock
        self.decoder = wire.FrameDecoder()
        self.outbuf = bytearray()
        self.acks: dict[int, dict] = {}


def _dial(host: str, port: int,
          timeout: float = CONNECT_TIMEOUT) -> socket.socket:
    deadline = time.monotonic() + timeout
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=2.0)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.setblocking(False)
            return sock
        except OSError:
            if time.monotonic() > deadline:
                raise LiveBackendError(
                    f"cannot connect to site at {host}:{port}"
                ) from None
            time.sleep(0.1)


class LiveNetwork:
    """The client-process half of the live transport.

    Implements the simulator's :class:`Network` surface for locally
    attached client nodes; bucket and coordinator attachment is
    forwarded to the hosting processes."""

    def __init__(self, config: ClusterConfig,
                 run_timeout: float = DEFAULT_RUN_TIMEOUT) -> None:
        self.config = config
        self.run_timeout = run_timeout
        self.stats = NetworkStats()
        self.observer: Any | None = None
        #: Locally hosted nodes (clients).  Shadow ids of remotely
        #: hosted nodes are tracked separately.
        self.nodes: dict[Hashable, Node] = {}
        self._shadows: set[Hashable] = set()
        self.delivered = 0
        self.now = 0.0
        # Unused compatibility surface (chaos/fault models are
        # simulator-only; kept so duck-typed readers find them).
        self.latency = LatencyModel()
        self.faults = None
        self.crashes = None
        self.schedules: list[Any] = []
        self._t0 = time.monotonic()
        self._sent = 0
        self._inbox: list[Message] = []
        self._timers: list[tuple[float, int, Timer]] = []
        self._sequence = itertools.count()
        self._tokens = itertools.count(1)
        self._crashed: set[Hashable] = set()
        #: Last stats snapshot census saw per site, for delta merging.
        self._site_baseline: dict[tuple, NetworkStats] = {}
        self._conns: dict[tuple, _Conn] = {}
        self._closed = False
        for index in range(len(config.buckets)):
            key = ("bucket", index)
            self._conns[key] = _Conn(
                key, _dial(*config.peer_address(key)))
        key = ("coordinator",)
        self._conns[key] = _Conn(key, _dial(*config.peer_address(key)))

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns.values():
            try:
                conn.sock.close()
            except OSError:
                pass

    def __enter__(self) -> "LiveNetwork":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- topology --------------------------------------------------------

    def attach(self, node: Node) -> Node:
        from repro.sdds.lhstar import (
            LHStarBucket,
            LHStarCoordinator,
            LHStarFile,
        )

        node_id = node.node_id
        family = node_id[0] if (isinstance(node_id, tuple)
                                and node_id) else None
        if family == "client":
            if node_id in self.nodes:
                raise ValueError(f"duplicate node id {node_id!r}")
            node.network = self
            self.nodes[node_id] = node
            for key in self._conns:
                self._roundtrip(key, {"ctrl": "register_client",
                                      "node": node_id})
            return node
        if family == "bucket":
            if type(node) is not LHStarBucket:
                raise LiveUnsupportedError(
                    f"{type(node).__name__} buckets are not hosted by "
                    "the live backend v1 (plain LH* only)"
                )
            file = node.file
            if node.address >= len(self.config.buckets):
                raise LiveBackendError(
                    f"bucket address {node.address} needs a site, but "
                    f"the cluster has {len(self.config.buckets)} "
                    "bucket processes"
                )
            self._roundtrip(("bucket", node.address), {
                "ctrl": "create_bucket",
                "name": file.name,
                "address": node.address,
                "level": node.level,
                "pending": node.pending,
                "bucket_capacity": file.bucket_capacity,
                "shrink": file.shrink,
                "split_policy": file.split_policy,
                "load_factor_threshold": file.load_factor_threshold,
                "merge_threshold": file.merge_threshold,
                "retry_policy": file.retry_policy,
            })
            node.network = self
            self._shadows.add(node_id)
            return node
        if family == "coordinator":
            if type(node) is not LHStarCoordinator:
                raise LiveUnsupportedError(
                    f"{type(node).__name__} is not hosted by the live "
                    "backend v1"
                )
            file = node.file
            if type(file) is not LHStarFile:
                raise LiveUnsupportedError(
                    f"{type(file).__name__} needs node families the "
                    "live backend v1 does not host (parity groups)"
                )
            if file.split_policy != "uncontrolled":
                raise LiveUnsupportedError(
                    "live backend v1 supports "
                    "split_policy='uncontrolled' only"
                )
            if file.shrink:
                raise LiveUnsupportedError(
                    "live backend v1 does not support file shrinking"
                )
            self._roundtrip(("coordinator",), {
                "ctrl": "create_coordinator",
                "name": file.name,
                "bucket_capacity": file.bucket_capacity,
                "shrink": file.shrink,
                "split_policy": file.split_policy,
                "load_factor_threshold": file.load_factor_threshold,
                "merge_threshold": file.merge_threshold,
                "retry_policy": file.retry_policy,
            })
            node.network = self
            self._shadows.add(node_id)
            return node
        raise LiveUnsupportedError(
            f"node family {family!r} is not hosted by the live backend"
        )

    def detach(self, node_id: Hashable) -> None:
        if node_id in self.nodes:
            self.nodes.pop(node_id).network = None
            return
        if node_id in self._shadows:
            self._shadows.discard(node_id)
            return
        raise UnknownNodeError(f"unknown node {node_id!r}")

    def __contains__(self, node_id: Hashable) -> bool:
        return node_id in self.nodes or node_id in self._shadows

    # -- crash faults ----------------------------------------------------

    def crash(self, node_id: Hashable) -> None:
        """Crash a hosted node: its site drops (and bills) inbound
        messages and freezes its timers, exactly like the simulator.
        Records survive — this models a host outage, not disk loss."""
        peer = peer_of(node_id)
        if peer is None:
            raise LiveUnsupportedError(
                "only hosted (bucket/coordinator) nodes can crash on "
                "the live backend"
            )
        if node_id not in self._shadows:
            raise UnknownNodeError(f"unknown node {node_id!r}")
        self._roundtrip(peer, {"ctrl": "crash", "node": node_id})
        self._crashed.add(node_id)

    def restore(self, node_id: Hashable) -> bool:
        peer = peer_of(node_id)
        if peer is None or node_id not in self._shadows:
            return False
        reply = self._roundtrip(peer, {"ctrl": "restore",
                                       "node": node_id})
        self._crashed.discard(node_id)
        return bool(reply["was_crashed"])

    def is_crashed(self, node_id: Hashable) -> bool:
        return node_id in self._crashed

    def partition(self, group_a: Any, group_b: Any,
                  symmetric: bool = True) -> None:
        raise LiveUnsupportedError(
            "network partitions are simulator-only")

    def heal(self, group_a: Any = None, group_b: Any = None,
             symmetric: bool = True) -> None:
        raise LiveUnsupportedError(
            "network partitions are simulator-only")

    # -- messaging -------------------------------------------------------

    def send(self, src: Hashable, dst: Hashable, kind: str,
             payload: dict | None = None, size: int = 64,
             hops: int = 0) -> Message:
        """Bill and ship one message.  Billing happens here, at the
        declared size — the same accounting point as the simulator."""
        payload = payload or {}
        self.stats.record(kind, size)
        if self.observer is not None:
            self.observer.on_send(kind, size)
        self._sent += 1
        message = Message(src=src, dst=dst, kind=kind, payload=payload,
                          size=size, hops=hops, send_time=self.now)
        if dst in self.nodes:
            self._inbox.append(message)
            return message
        peer = peer_of(dst)
        if peer is None:
            raise LiveUnsupportedError(
                f"cannot route to node family of {dst!r}")
        if peer[0] == "bucket" and peer[1] >= len(self.config.buckets):
            raise LiveBackendError(
                f"no site hosts bucket address {peer[1]}")
        self._conns[peer].outbuf += wire.encode_frame(
            wire.CHANNEL_DATA, wire.message_to_wire(message))
        return message

    def schedule(self, delay: float, callback: Callable[[], None],
                 owner: Hashable | None = None) -> Timer:
        if delay < 0:
            raise ValueError("timer delay must be non-negative")
        timer = Timer(self._mono() + delay, callback, owner=owner)
        heapq.heappush(self._timers,
                       (timer.when, next(self._sequence), timer))
        return timer

    def reset_clock(self) -> None:
        live = [entry for entry in self._timers
                if not entry[2].cancelled]
        if live or self._inbox:
            raise RuntimeError("cannot reset the clock with messages "
                               "in flight")
        self._timers.clear()
        self._t0 = time.monotonic()
        self.now = 0.0

    # -- the event pump --------------------------------------------------

    def _mono(self) -> float:
        return time.monotonic() - self._t0

    def _pump(self, timeout: float) -> bool:
        """One socket round: flush pending writes, read, decode."""
        if self._closed:
            raise LiveBackendError("network is closed")
        conns = list(self._conns.values())
        rlist = [c.sock for c in conns]
        wlist = [c.sock for c in conns if c.outbuf]
        readable, writable, __ = select.select(rlist, wlist, [],
                                               timeout)
        by_sock = {c.sock: c for c in conns}
        progress = False
        for sock in writable:
            conn = by_sock[sock]
            try:
                sent = sock.send(conn.outbuf)
            except BlockingIOError:
                continue
            except OSError as exc:
                raise LiveBackendError(
                    f"connection to site {conn.key!r} failed: {exc}"
                ) from exc
            if sent:
                del conn.outbuf[:sent]
                progress = True
        for sock in readable:
            conn = by_sock[sock]
            try:
                data = sock.recv(1 << 16)
            except BlockingIOError:
                continue
            except OSError as exc:
                raise LiveBackendError(
                    f"connection to site {conn.key!r} failed: {exc}"
                ) from exc
            if not data:
                raise LiveBackendError(
                    f"site {conn.key!r} closed the connection (check "
                    "its server log)"
                )
            conn.decoder.feed(data)
            for channel, value in conn.decoder.frames():
                progress = True
                if channel == wire.CHANNEL_DATA:
                    self._inbox.append(wire.message_from_wire(value))
                elif (isinstance(value, dict)
                        and value.get("ctrl") == "ack"):
                    conn.acks[value["token"]] = value
        return progress

    def _fire_due_timers(self) -> bool:
        fired = False
        now = self._mono()
        while self._timers and self._timers[0][0] <= now:
            __, __, timer = heapq.heappop(self._timers)
            if timer.cancelled:
                continue
            self.now = max(self.now, timer.when)
            timer.fired = True
            timer.callback()
            fired = True
        return fired

    def _next_timer_due(self) -> float | None:
        while self._timers and self._timers[0][2].cancelled:
            heapq.heappop(self._timers)
        if not self._timers:
            return None
        return self._timers[0][0]

    def _dispatch_inbox(self) -> bool:
        progress = False
        while self._inbox:
            message = self._inbox.pop(0)
            progress = True
            self.now = max(self.now, self._mono())
            node = self.nodes.get(message.dst)
            if node is None:
                # Meanwhile-detached client: the message crossed the
                # wire and dies here, billed like the simulator.
                self.stats.crashed_drops += 1
                self.delivered += 1
                continue
            if message.checksum and message.checksum != wire_checksum(
                    message.kind, message.payload, message.size):
                self.stats.corrupted += 1
                self.delivered += 1
                continue
            self.delivered += 1
            if self.observer is not None:
                self.observer.on_deliver(
                    message.kind, message.size,
                    self.now - message.send_time)
            node.handle(message)
        return progress

    def _service(self, timeout: float) -> bool:
        progress = self._pump(timeout)
        if self._fire_due_timers():
            progress = True
        if self._dispatch_inbox():
            progress = True
        return progress

    # -- control plane ---------------------------------------------------

    def _roundtrip(self, key: tuple, payload: dict,
                   timeout: float = CTRL_TIMEOUT) -> dict:
        conn = self._conns[key]
        token = next(self._tokens)
        request = dict(payload)
        request["token"] = token
        conn.outbuf += wire.encode_frame(wire.CHANNEL_CTRL, request)
        deadline = time.monotonic() + timeout
        while token not in conn.acks:
            self._pump(0.05)
            if time.monotonic() > deadline:
                raise LiveBackendError(
                    f"site {key!r} did not acknowledge "
                    f"{payload.get('ctrl')!r} within {timeout}s"
                )
        reply = conn.acks.pop(token)
        if not reply.get("ok", True):
            raise LiveBackendError(
                f"control {payload.get('ctrl')!r} failed at site "
                f"{key!r}: {reply.get('error')}"
            )
        return reply

    def _merge_site_stats(self, key: tuple,
                          snapshot: NetworkStats) -> None:
        """Fold a site's stats growth since the last census into the
        local stats object (additive, so the client's own billing —
        including its direct ``retries`` bumps — is preserved)."""
        baseline = self._site_baseline.get(key)
        delta = snapshot.diff(baseline) if baseline else snapshot
        self._site_baseline[key] = snapshot
        self.stats.messages += delta.messages
        self.stats.bytes += delta.bytes
        self.stats.by_kind.update(delta.by_kind)
        self.stats.bytes_by_kind.update(delta.bytes_by_kind)
        self.stats.dropped += delta.dropped
        self.stats.duplicated += delta.duplicated
        self.stats.retries += delta.retries
        self.stats.crashed_drops += delta.crashed_drops
        self.stats.partitioned_drops += delta.partitioned_drops
        self.stats.corrupted += delta.corrupted

    def _census(self) -> tuple[bool, tuple | None]:
        """One cluster-wide conservation census.

        Returns ``(quiescent, totals)``; ``totals`` feeds the
        two-identical-rounds rule in :meth:`run`."""
        sent = self._sent
        delivered = self.delivered
        buffered = 0
        timers = 0 if self._next_timer_due() is None else 1
        for key in self._conns:
            reply = self._roundtrip(key, {"ctrl": "census"})
            sent += reply["sent"]
            delivered += reply["delivered"]
            buffered += reply["buffered"]
            timers += reply["timers"]
            self._merge_site_stats(key, reply["stats"])
        if self._inbox:
            # Data slipped in during the census: not idle after all.
            return False, None
        quiescent = (sent == delivered and buffered == 0
                     and timers == 0)
        return quiescent, (sent, delivered)

    def remote_metrics(self) -> dict[tuple, dict]:
        """Per-site metrics registries (for live tracing demos)."""
        result = {}
        for key in self._conns:
            reply = self._roundtrip(key, {"ctrl": "census"})
            self._merge_site_stats(key, reply["stats"])
            result[key] = reply["metrics"]
        return result

    def dump_buckets(self, name: str) -> dict[int, dict]:
        """All hosted buckets of file ``name`` (the live counterpart
        of reading ``file.buckets`` in the simulator)."""
        result: dict[int, dict] = {}
        for key in self._conns:
            if key[0] != "bucket":
                continue
            reply = self._roundtrip(key, {"ctrl": "dump",
                                          "name": name})
            result.update(reply["buckets"])
        return result

    def coordinator_state(self, name: str) -> dict:
        return self._roundtrip(("coordinator",), {"ctrl": "state",
                                                  "name": name})

    # -- run to quiescence -----------------------------------------------

    def run(self, max_events: int = 10_000_000) -> int:
        """Pump until the whole cluster is quiescent.

        The live analogue of the simulator's event loop draining its
        queue: local sockets and timers first, then a cluster census;
        done when two consecutive censuses balance and agree."""
        start = self.delivered
        deadline = time.monotonic() + self.run_timeout
        last_totals: tuple | None = None
        while True:
            if time.monotonic() > deadline:
                raise LiveBackendError(
                    f"cluster did not quiesce within "
                    f"{self.run_timeout}s (sent={self._sent}, "
                    f"delivered={self.delivered})"
                )
            if self._service(0.002):
                last_totals = None
                continue
            due = self._next_timer_due()
            if due is not None:
                # A local timer (e.g. a retry timeout) is armed: wait
                # it out, but stay responsive to inbound data.
                wait = min(max(due - self._mono(), 0.0), 0.05)
                self._service(wait)
                last_totals = None
                continue
            quiescent, totals = self._census()
            if not quiescent:
                last_totals = None
                self._service(0.005)
                continue
            if totals == last_totals:
                return self.delivered - start
            last_totals = totals


# ---------------------------------------------------------------------------
# cluster lifecycle
# ---------------------------------------------------------------------------


def _free_ports(host: str, count: int) -> list[int]:
    """Reserve ``count`` distinct free TCP ports (standard
    bind-0-then-close trick; the tiny race is acceptable for tests)."""
    sockets = []
    ports = []
    try:
        for __ in range(count):
            sock = socket.socket()
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, 0))
            sockets.append(sock)
            ports.append(sock.getsockname()[1])
    finally:
        for sock in sockets:
            sock.close()
    return ports


def _tail(path: Path, lines: int = 20) -> str:
    try:
        content = path.read_text(errors="replace").splitlines()
    except OSError:
        return "<no log>"
    return "\n".join(content[-lines:])


class LiveCluster:
    """Spawns and supervises the site processes of one live cluster.

    >>> # with LiveCluster(buckets=4) as cluster:
    >>> #     network = cluster.connect()
    """

    def __init__(self, buckets: int = 4, host: str = "127.0.0.1",
                 log_dir: str | os.PathLike | None = None,
                 env: dict[str, str] | None = None,
                 startup_timeout: float = CONNECT_TIMEOUT,
                 codec_cache_dir: str | os.PathLike | None = None
                 ) -> None:
        if buckets < 1:
            raise ValueError("a cluster needs at least one bucket site")
        self.buckets = buckets
        self.host = host
        self.extra_env = dict(env or {})
        self.startup_timeout = startup_timeout
        #: Where site processes persist fused codec tables (see
        #: ``repro.core.kernels``).  ``None`` = a cluster-private
        #: directory inside the workdir, so a cluster's N bucket
        #: processes build each table once instead of N times.
        self.codec_cache_dir = codec_cache_dir
        self._log_dir = Path(log_dir) if log_dir else None
        self._tmp: tempfile.TemporaryDirectory | None = None
        self._procs: dict[tuple, subprocess.Popen] = {}
        self._logs: dict[tuple, Path] = {}
        self._networks: list[LiveNetwork] = []
        self.config: ClusterConfig | None = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "LiveCluster":
        self._tmp = tempfile.TemporaryDirectory(prefix="repro-live-")
        workdir = Path(self._tmp.name)
        log_dir = self._log_dir or workdir
        log_dir.mkdir(parents=True, exist_ok=True)
        ports = _free_ports(self.host, self.buckets + 1)
        self.config = ClusterConfig(self.host, ports[0], ports[1:])
        config_path = workdir / "cluster.json"
        self.config.dump(str(config_path))

        env = dict(os.environ)
        env.update(self.extra_env)
        from repro.core.kernels import CODEC_CACHE_ENV

        cache_dir = Path(self.codec_cache_dir
                         or workdir / "codec-cache")
        cache_dir.mkdir(parents=True, exist_ok=True)
        env.setdefault(CODEC_CACHE_ENV, str(cache_dir))
        src_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        if src_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                src_root + (os.pathsep + existing if existing else "")
            )

        def spawn(key: tuple, role: str, index: int) -> None:
            label = f"{role}-{index}" if role == "bucket" else role
            log_path = log_dir / f"{label}.log"
            handle = open(log_path, "wb")
            try:
                proc = subprocess.Popen(
                    [sys.executable, "-m", "repro.net.serve",
                     "--role", role, "--index", str(index),
                     "--config", str(config_path)],
                    stdout=handle, stderr=subprocess.STDOUT, env=env,
                )
            finally:
                handle.close()
            self._procs[key] = proc
            self._logs[key] = log_path

        for index in range(self.buckets):
            spawn(("bucket", index), "bucket", index)
        spawn(("coordinator",), "coordinator", 0)
        self._await_ready()
        return self

    def _await_ready(self) -> None:
        assert self.config is not None
        deadline = time.monotonic() + self.startup_timeout
        for key, proc in self._procs.items():
            host, port = self.config.peer_address(key)
            while True:
                if proc.poll() is not None:
                    raise LiveBackendError(
                        f"site process {key!r} exited with code "
                        f"{proc.returncode} during startup; log tail:\n"
                        + _tail(self._logs[key])
                    )
                try:
                    probe = socket.create_connection((host, port),
                                                     timeout=1.0)
                    probe.close()
                    break
                except OSError:
                    if time.monotonic() > deadline:
                        raise LiveBackendError(
                            f"site {key!r} did not come up within "
                            f"{self.startup_timeout}s; log tail:\n"
                            + _tail(self._logs[key])
                        ) from None
                    time.sleep(0.05)

    def connect(self,
                run_timeout: float = DEFAULT_RUN_TIMEOUT) -> LiveNetwork:
        if self.config is None:
            raise LiveBackendError("cluster is not started")
        network = LiveNetwork(self.config, run_timeout=run_timeout)
        self._networks.append(network)
        return network

    def log_paths(self) -> dict[tuple, Path]:
        return dict(self._logs)

    def shutdown(self) -> None:
        for network in self._networks:
            network.close()
        self._networks.clear()
        for key, proc in self._procs.items():
            if proc.poll() is not None:
                continue
            try:
                assert self.config is not None
                sock = socket.create_connection(
                    self.config.peer_address(key), timeout=2.0)
                sock.sendall(wire.encode_frame(
                    wire.CHANNEL_CTRL, {"ctrl": "shutdown"}))
                sock.close()
            except OSError:
                pass
        for proc in self._procs.values():
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)
        self._procs.clear()
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None
        self.config = None

    def __enter__(self) -> "LiveCluster":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()
