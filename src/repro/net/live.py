"""The live (socket) backend of the :class:`Network` contract.

:class:`LiveNetwork` is a drop-in for the simulated
:class:`repro.net.simulator.Network`: the *same* LH* protocol actors
run unmodified, but buckets and the coordinator live in separate
processes (see :mod:`repro.net.serve`) and messages cross real TCP
connections in :mod:`repro.net.wire` frames.  The client process keeps
only client actors locally; ``attach`` of a bucket or coordinator
turns into an (unbilled) control message to the hosting site, and the
local protocol object stays behind as an inert shadow.

``run()`` keeps the simulator's run-to-quiescence meaning over real
sockets: pump connections, fire due wall-clock timers, dispatch
inbound messages — and, once locally idle, take a cluster-wide census
of conservation counters (messages sent vs delivered, buffered
messages, armed timers).  The network is quiescent when two
consecutive censuses agree and balance.  Each census also folds the
sites' :class:`~repro.net.stats.NetworkStats` deltas into the local
``stats`` object, so snapshot/diff costing — and therefore billing —
works exactly like the simulator: every message is billed once, at
its sender's site, at its declared size.

Scope (v3): plain :class:`~repro.sdds.lhstar.LHStarFile` *and*
:class:`~repro.sdds.lhstar_rs.LHStarRSFile` (parity buckets hosted on
bucket sites, recovery over TCP) with every split policy and with
``shrink=True`` (merges, retired tombstones and level drops flow over
the billed data plane); graceful site leave with online bucket
migration (:meth:`LiveNetwork.site_leave`) and tombstone reaping
(:meth:`LiveNetwork.decommission` plus
:meth:`LiveCluster.reap_site`); crash/restore of hosted nodes; seeded
fault injection (loss, duplication, corruption, latency spikes,
partitions) installed on every site through unbilled control verbs —
see :meth:`LiveNetwork.enable_faults` — so the chaos nemesis drives
real processes; elastic growth (a split past the provisioned site
count spawns a new site process on demand).  The remaining
out-of-scope configurations raise :class:`LiveUnsupportedError` at
attach time with the texts in :data:`UNSUPPORTED_SCOPE`.

>>> # quickstart (see docs/SERVING.md):
>>> # with LiveCluster(buckets=4) as cluster:
>>> #     network = cluster.connect()
>>> #     file = LHStarFile(network=network)
>>> #     file.insert(1, b"payload")
"""

from __future__ import annotations

import heapq
import itertools
import os
import select
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Hashable

from repro.errors import ReproError, UnknownNodeError
from repro.net import wire
from repro.net.faults import FaultModel
from repro.net.serve import ClusterConfig, peer_of
from repro.net.simulator import (
    LatencyModel,
    Message,
    Node,
    Timer,
    wire_checksum,
)
from repro.net.stats import NetworkStats


class LiveBackendError(ReproError, RuntimeError):
    """The live transport failed operationally (connection lost,
    control error, quiescence timeout, site process died)."""


class LiveUnsupportedError(LiveBackendError):
    """The requested configuration or operation is outside the live
    backend's scope (exotic node families, unroutable destinations,
    unsupported parity placement)."""


#: The remaining out-of-scope configurations (v3).  Each value is the
#: static tail of the :class:`LiveUnsupportedError` message raised at
#: the matching attach-time guard; the docs-reference test asserts
#: every one of them appears verbatim in docs/SERVING.md so the
#: documented scope and the raised messages cannot drift apart.
UNSUPPORTED_SCOPE = {
    "bucket_family": ("buckets are not hosted by the live backend "
                      "(plain LH* buckets only)"),
    "node_family": "is not hosted by the live backend",
    "file_family": ("needs node families the live backend does "
                    "not host"),
    "parity_placement": ("the live backend places parity "
                         "(group, index) on bucket site "
                         "group*group_size+index, which needs "
                         "parity_count <= group_size"),
}


#: How long ``LiveNetwork.run`` may chase quiescence before giving up.
DEFAULT_RUN_TIMEOUT = 60.0
#: Control-message round-trip allowance.
CTRL_TIMEOUT = 15.0
#: Socket-level connect retry window while sites boot.
CONNECT_TIMEOUT = 30.0


class _Conn:
    """One client connection to a site process."""

    def __init__(self, key: tuple, sock: socket.socket) -> None:
        self.key = key
        self.sock = sock
        self.decoder = wire.FrameDecoder()
        self.outbuf = bytearray()
        self.acks: dict[int, dict] = {}


def _dial(host: str, port: int,
          timeout: float = CONNECT_TIMEOUT) -> socket.socket:
    deadline = time.monotonic() + timeout
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=2.0)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.setblocking(False)
            return sock
        except OSError:
            if time.monotonic() > deadline:
                raise LiveBackendError(
                    f"cannot connect to site at {host}:{port}"
                ) from None
            time.sleep(0.1)


class _LiveFaultModel:
    """The client-side face of cluster-wide fault injection.

    Holds a real seeded :class:`~repro.net.faults.FaultModel` for
    messages the *client* sends (applied in :meth:`LiveNetwork.send`
    with the simulator's exact ordering), and re-broadcasts every rate
    change to all sites through the unbilled ``fault_set`` control
    verb — each site salts the same seed with its index, so streams
    are deterministic per (seed, site) and a nemesis retuning
    ``network.faults.loss_rate`` works unchanged on sockets."""

    def __init__(self, network: "LiveNetwork", seed: int) -> None:
        self._network = network
        self.seed = seed
        self._local = FaultModel(seed=seed * 2003 + 1)

    def _rate(name: str):  # noqa: N805 - property factory
        def get(self) -> float:
            return getattr(self._local, name)

        def set(self, value: float) -> None:
            setattr(self._local, name, value)
            self._network._broadcast_faults()

        return property(get, set)

    loss_rate = _rate("loss_rate")
    duplication_rate = _rate("duplication_rate")
    corruption_rate = _rate("corruption_rate")
    del _rate

    @property
    def reliable_kinds(self):
        return self._local.reliable_kinds

    def applies(self, kind: str) -> bool:
        return self._local.applies(kind)

    def drops(self) -> bool:
        return self._local.drops()

    def duplicates(self) -> bool:
        return self._local.duplicates()

    def corrupts(self) -> bool:
        return self._local.corrupts()

    def corrupt_bit(self) -> int:
        return self._local.corrupt_bit()


class LiveNetwork:
    """The client-process half of the live transport.

    Implements the simulator's :class:`Network` surface for locally
    attached client nodes; bucket and coordinator attachment is
    forwarded to the hosting processes."""

    def __init__(self, config: ClusterConfig,
                 run_timeout: float = DEFAULT_RUN_TIMEOUT) -> None:
        self.config = config
        self.run_timeout = run_timeout
        self.stats = NetworkStats()
        self.observer: Any | None = None
        #: Locally hosted nodes (clients).  Shadow ids of remotely
        #: hosted nodes are tracked separately.
        self.nodes: dict[Hashable, Node] = {}
        self._shadows: set[Hashable] = set()
        self.delivered = 0
        self.now = 0.0
        #: Latency model; assigning one (the nemesis swaps in a spiked
        #: model) broadcasts its ``extra`` as a sender-side hold to
        #: every site through the ``delay`` control verb.
        self._latency: Any = LatencyModel()
        #: Fault injection, off until :meth:`enable_faults`.
        self.faults: _LiveFaultModel | None = None
        #: Optional :class:`~repro.net.faults.CrashFaultModel`,
        #: advanced inside :meth:`run` like the simulator does.
        self.crashes = None
        #: Attached schedules (the chaos nemesis appends itself);
        #: advanced inside :meth:`run` on the wall clock.
        self.schedules: list[Any] = []
        #: Severed directed links, checked for client-bound arrivals;
        #: sites hold the same set for their own deliveries.
        self._partitions: set[tuple] = set()
        #: LH*_RS layout per file name (group_size, parity_count),
        #: learned at attach time; places parity ids on host sites.
        self._rs_params: dict[str, tuple[int, int]] = {}
        #: Callback to provision sites for bucket addresses beyond the
        #: cluster config (set by :meth:`LiveCluster.connect`).
        self._on_missing_site: Callable[[int], None] | None = None
        self._t0 = time.monotonic()
        self._sent = 0
        self._inbox: list[Message] = []
        self._timers: list[tuple[float, int, Timer]] = []
        self._sequence = itertools.count()
        self._tokens = itertools.count(1)
        self._crashed: set[Hashable] = set()
        #: Last stats snapshot census saw per site, for delta merging.
        self._site_baseline: dict[tuple, NetworkStats] = {}
        #: Bucket addresses whose sites were decommissioned (reaped):
        #: never redialed, and shipping to one fails fast.  Their
        #: final conservation counters are folded into the offsets
        #: below so the cluster census stays balanced without them.
        self._reaped: set[int] = set()
        self._reaped_sent = 0
        self._reaped_delivered = 0
        self._conns: dict[tuple, _Conn] = {}
        self._closed = False
        for index in range(len(config.buckets)):
            key = ("bucket", index)
            self._conns[key] = _Conn(
                key, _dial(*config.peer_address(key)))
        key = ("coordinator",)
        self._conns[key] = _Conn(key, _dial(*config.peer_address(key)))

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns.values():
            try:
                conn.sock.close()
            except OSError:
                pass

    def __enter__(self) -> "LiveNetwork":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- fault injection -------------------------------------------------

    @property
    def latency(self) -> Any:
        return self._latency

    @latency.setter
    def latency(self, model: Any) -> None:
        self._latency = model
        extra = float(getattr(model, "extra", 0.0))
        self._broadcast({"ctrl": "delay", "extra": extra})

    def enable_faults(self, seed: int) -> _LiveFaultModel:
        """Install seeded fault models cluster-wide and return the
        client-side proxy (also stored as ``self.faults``) whose rate
        attributes a nemesis tunes exactly as on the simulator."""
        self.faults = _LiveFaultModel(self, seed)
        self._broadcast_faults()
        return self.faults

    def _broadcast(self, payload: dict) -> None:
        for key in list(self._conns):
            self._roundtrip(key, dict(payload))

    def _broadcast_faults(self) -> None:
        faults = self.faults
        if faults is None:
            return
        self._broadcast({
            "ctrl": "fault_set",
            "seed": faults.seed,
            "loss_rate": faults.loss_rate,
            "duplication_rate": faults.duplication_rate,
            "corruption_rate": faults.corruption_rate,
        })

    # -- topology --------------------------------------------------------

    def _peer_of(self, node_id: Hashable) -> tuple | None:
        """Parity-aware :func:`repro.net.serve.peer_of` using the
        layouts learned at attach time."""
        peer = peer_of(node_id)
        if (peer is None and isinstance(node_id, tuple) and node_id
                and node_id[0] == "parity" and len(node_id) == 4):
            rs = self._rs_params.get(node_id[1])
            if rs is not None:
                peer = peer_of(node_id, group_size=rs[0])
        return peer

    def _ensure_site(self, needed: int) -> None:
        """Make sure bucket addresses ``< needed`` have a hosting
        site, spawning processes through the cluster when possible."""
        if needed <= len(self.config.buckets):
            return
        if self._on_missing_site is None:
            raise LiveBackendError(
                f"no site hosts bucket address {needed - 1} and this "
                "network cannot spawn sites (connect through a "
                "LiveCluster)"
            )
        self._on_missing_site(needed)
        self._sync_conns()
        # Existing sites still hold the old map (and possibly parked
        # frames for the new ones): broadcast the grown config.
        self._broadcast({"ctrl": "config",
                         "buckets": list(self.config.buckets)})
        # The new sites must also see current fault/latency rules.
        self._broadcast_faults()
        extra = float(getattr(self._latency, "extra", 0.0))
        if extra:
            self._broadcast({"ctrl": "delay", "extra": extra})

    def _connect_peer(self, key: tuple) -> _Conn:
        conn = self._conns.get(key)
        if conn is None:
            conn = self._conns[key] = _Conn(
                key, _dial(*self.config.peer_address(key)))
            for node_id in list(self.nodes):
                self._roundtrip(key, {"ctrl": "register_client",
                                      "node": node_id})
        return conn

    def _sync_conns(self) -> None:
        """Dial (and register local clients at) any configured site
        this network has no connection to yet — the cluster may have
        grown underneath us, possibly via another client."""
        for index in range(len(self.config.buckets)):
            if index in self._reaped:
                continue
            self._connect_peer(("bucket", index))

    @staticmethod
    def _file_params(file: Any) -> dict:
        from repro.sdds.lhstar_rs import LHStarRSFile

        rs = None
        if isinstance(file, LHStarRSFile):
            rs = {"group_size": file.group_size,
                  "parity_count": file.parity_count}
        return {
            "name": file.name,
            "bucket_capacity": file.bucket_capacity,
            "shrink": file.shrink,
            "split_policy": file.split_policy,
            "load_factor_threshold": file.load_factor_threshold,
            "merge_threshold": file.merge_threshold,
            "retry_policy": file.retry_policy,
            "rs": rs,
        }

    def _register_rs(self, file: Any) -> None:
        from repro.sdds.lhstar_rs import LHStarRSFile

        if not isinstance(file, LHStarRSFile):
            return
        if file.parity_count > file.group_size:
            raise LiveUnsupportedError(
                UNSUPPORTED_SCOPE["parity_placement"])
        self._rs_params[file.name] = (file.group_size,
                                      file.parity_count)

    def attach(self, node: Node) -> Node:
        from repro.sdds.lhstar import (
            LHStarBucket,
            LHStarCoordinator,
            LHStarFile,
        )
        from repro.sdds.lhstar_rs import LHStarRSFile, ParityBucket

        node_id = node.node_id
        family = node_id[0] if (isinstance(node_id, tuple)
                                and node_id) else None
        if family == "client":
            if node_id in self.nodes:
                raise ValueError(f"duplicate node id {node_id!r}")
            node.network = self
            self.nodes[node_id] = node
            for key in list(self._conns):
                self._roundtrip(key, {"ctrl": "register_client",
                                      "node": node_id})
            return node
        if family == "bucket":
            if type(node) is not LHStarBucket:
                raise LiveUnsupportedError(
                    f"{type(node).__name__} "
                    f"{UNSUPPORTED_SCOPE['bucket_family']}")
            file = node.file
            self._register_rs(file)
            self._ensure_site(node.address + 1)
            self._roundtrip(("bucket", node.address), {
                "ctrl": "create_bucket",
                "address": node.address,
                "level": node.level,
                "pending": node.pending,
                **self._file_params(file),
            })
            node.network = self
            self._shadows.add(node_id)
            return node
        if family == "parity":
            if type(node) is not ParityBucket:
                raise LiveUnsupportedError(
                    f"{type(node).__name__} "
                    f"{UNSUPPORTED_SCOPE['node_family']}")
            file = node.file
            self._register_rs(file)
            site = node.group * file.group_size + node.index
            self._ensure_site(site + 1)
            self._roundtrip(("bucket", site), {
                "ctrl": "create_parity",
                "group": node.group,
                "index": node.index,
                **self._file_params(file),
            })
            node.network = self
            self._shadows.add(node_id)
            return node
        if family == "coordinator":
            if type(node) is not LHStarCoordinator:
                raise LiveUnsupportedError(
                    f"{type(node).__name__} "
                    f"{UNSUPPORTED_SCOPE['node_family']}")
            file = node.file
            if type(file) not in (LHStarFile, LHStarRSFile):
                raise LiveUnsupportedError(
                    f"{type(file).__name__} "
                    f"{UNSUPPORTED_SCOPE['file_family']}")
            self._register_rs(file)
            self._roundtrip(("coordinator",), {
                "ctrl": "create_coordinator",
                **self._file_params(file),
            })
            node.network = self
            self._shadows.add(node_id)
            return node
        raise LiveUnsupportedError(
            f"node family {family!r} "
            f"{UNSUPPORTED_SCOPE['node_family']}")

    def detach(self, node_id: Hashable) -> None:
        if node_id in self.nodes:
            self.nodes.pop(node_id).network = None
            return
        if node_id in self._shadows:
            self._shadows.discard(node_id)
            return
        raise UnknownNodeError(f"unknown node {node_id!r}")

    def __contains__(self, node_id: Hashable) -> bool:
        return node_id in self.nodes or node_id in self._shadows

    # -- crash faults ----------------------------------------------------

    def _hosted_peer(self, node_id: Hashable, what: str) -> tuple:
        """Resolve the hosting site of a crash/restore target, raising
        the same typed errors for both verbs: ``LiveUnsupportedError``
        for unroutable families (clients live in this process) and
        ``UnknownNodeError`` for a hosted id no site knows."""
        peer = self._peer_of(node_id)
        if peer is None:
            raise LiveUnsupportedError(
                f"only hosted (bucket/coordinator/parity) nodes can "
                f"be {what} on the live backend"
            )
        if (peer[0] == "bucket"
                and peer[1] >= len(self.config.buckets)):
            # No site was ever provisioned for this address, so the
            # node cannot exist anywhere.
            raise UnknownNodeError(f"unknown node {node_id!r}")
        return peer

    def crash(self, node_id: Hashable) -> None:
        """Crash a hosted node: its site drops (and bills) inbound
        messages and freezes its timers, exactly like the simulator.
        Records survive — this models a host outage, not disk loss.
        The hosting site validates existence, so buckets created
        server-side by splits are crashable too."""
        peer = self._hosted_peer(node_id, "crashed")
        self._connect_peer(peer)
        reply = self._roundtrip(peer, {"ctrl": "crash",
                                       "node": node_id})
        if not reply.get("known", True):
            raise UnknownNodeError(f"unknown node {node_id!r}")
        self._crashed.add(node_id)

    def restore(self, node_id: Hashable) -> bool:
        peer = self._hosted_peer(node_id, "restored")
        self._connect_peer(peer)
        reply = self._roundtrip(peer, {"ctrl": "restore",
                                       "node": node_id})
        if not reply.get("known", True):
            raise UnknownNodeError(f"unknown node {node_id!r}")
        self._crashed.discard(node_id)
        return bool(reply["was_crashed"])

    def is_crashed(self, node_id: Hashable) -> bool:
        return node_id in self._crashed

    # -- partitions ------------------------------------------------------

    def partition(self, group_a: Any, group_b: Any,
                  symmetric: bool = True) -> None:
        """Sever directed links cluster-wide (simulator semantics:
        the message is billed at send and dies, as
        ``partitioned_drops``, at the delivering site)."""
        from repro.net.simulator import Network

        links = []
        for a in Network._as_group(group_a):
            for b in Network._as_group(group_b):
                if a == b:
                    continue
                links.append((a, b))
                if symmetric:
                    links.append((b, a))
        self._partitions.update(links)
        self._broadcast({"ctrl": "partition",
                         "links": [list(link) for link in links]})

    def heal(self, group_a: Any | None = None,
             group_b: Any | None = None,
             symmetric: bool = True) -> None:
        from repro.net.simulator import Network

        if group_a is None and group_b is None:
            self._partitions.clear()
            self._broadcast({"ctrl": "heal", "all": True})
            return
        if group_a is None or group_b is None:
            raise ValueError("heal takes no groups or both groups")
        links = []
        for a in Network._as_group(group_a):
            for b in Network._as_group(group_b):
                links.append((a, b))
                if symmetric:
                    links.append((b, a))
        self._partitions.difference_update(links)
        self._broadcast({"ctrl": "heal",
                         "links": [list(link) for link in links]})

    def is_partitioned(self, src: Hashable, dst: Hashable) -> bool:
        return (src, dst) in self._partitions

    # -- messaging -------------------------------------------------------

    def send(self, src: Hashable, dst: Hashable, kind: str,
             payload: dict | None = None, size: int = 64,
             hops: int = 0) -> Message:
        """Bill, apply client-side faults, and ship one message.
        Billing happens here, at the declared size — the same
        accounting point (and the same fault ordering) as the
        simulator.  A dropped message is billed but never shipped."""
        payload = payload or {}
        self.stats.record(kind, size)
        if self.observer is not None:
            self.observer.on_send(kind, size)
        faults = self.faults
        copies = 1
        base_checksum = 0
        if faults is not None and faults.applies(kind):
            if faults.drops():
                self.stats.dropped += 1
                if self.observer is not None:
                    self.observer.on_drop(kind, size)
                return Message(src=src, dst=dst, kind=kind,
                               payload=payload, size=size, hops=hops,
                               send_time=self.now,
                               arrival_time=float("inf"))
            if faults.duplicates():
                copies = 2
            if faults.corruption_rate > 0:
                base_checksum = wire_checksum(kind, payload, size)
        first: Message | None = None
        for copy in range(copies):
            if copy:
                self.stats.record(kind, size)
                self.stats.duplicated += 1
                if self.observer is not None:
                    self.observer.on_send(kind, size)
            checksum = base_checksum
            if base_checksum and faults.corrupts():
                checksum ^= 1 << faults.corrupt_bit()
                if checksum == 0:
                    checksum = 0xFFFFFFFF
            message = Message(src=src, dst=dst, kind=kind,
                              payload=payload, size=size, hops=hops,
                              send_time=self.now, checksum=checksum)
            self._ship(message)
            if first is None:
                first = message
        return first

    def _ship(self, message: Message) -> None:
        dst = message.dst
        if dst in self.nodes:
            self._sent += 1
            self._inbox.append(message)
            return
        peer = self._peer_of(dst)
        if peer is None:
            raise LiveUnsupportedError(
                f"cannot route to node family of {dst!r}")
        if peer[0] == "bucket" and peer[1] in self._reaped:
            raise LiveBackendError(
                f"bucket address {peer[1]} was decommissioned")
        if peer[0] == "bucket" and peer[1] >= len(self.config.buckets):
            # A keyed operation can outrun the coordinator's split
            # traffic to an address no site hosts yet: grow first.
            self._ensure_site(peer[1] + 1)
        conn = self._connect_peer(peer)
        # Counted only once the message is committed to a socket
        # buffer: a raise above means it was billed but never shipped,
        # and the conservation census must not wait for a delivery
        # that can never happen.
        self._sent += 1
        conn.outbuf += wire.encode_frame(
            wire.CHANNEL_DATA, wire.message_to_wire(message))

    def schedule(self, delay: float, callback: Callable[[], None],
                 owner: Hashable | None = None) -> Timer:
        if delay < 0:
            raise ValueError("timer delay must be non-negative")
        timer = Timer(self._mono() + delay, callback, owner=owner)
        heapq.heappush(self._timers,
                       (timer.when, next(self._sequence), timer))
        return timer

    def reset_clock(self) -> None:
        live = [entry for entry in self._timers
                if not entry[2].cancelled]
        if live or self._inbox:
            raise RuntimeError("cannot reset the clock with messages "
                               "in flight")
        self._timers.clear()
        self._t0 = time.monotonic()
        self.now = 0.0

    # -- the event pump --------------------------------------------------

    def _mono(self) -> float:
        return time.monotonic() - self._t0

    def _pump(self, timeout: float) -> bool:
        """One socket round: flush pending writes, read, decode."""
        if self._closed:
            raise LiveBackendError("network is closed")
        conns = list(self._conns.values())
        rlist = [c.sock for c in conns]
        wlist = [c.sock for c in conns if c.outbuf]
        readable, writable, __ = select.select(rlist, wlist, [],
                                               timeout)
        by_sock = {c.sock: c for c in conns}
        progress = False
        for sock in writable:
            conn = by_sock[sock]
            try:
                sent = sock.send(conn.outbuf)
            except BlockingIOError:
                continue
            except OSError as exc:
                raise LiveBackendError(
                    f"connection to site {conn.key!r} failed: {exc}"
                ) from exc
            if sent:
                del conn.outbuf[:sent]
                progress = True
        for sock in readable:
            conn = by_sock[sock]
            try:
                data = sock.recv(1 << 16)
            except BlockingIOError:
                continue
            except OSError as exc:
                raise LiveBackendError(
                    f"connection to site {conn.key!r} failed: {exc}"
                ) from exc
            if not data:
                raise LiveBackendError(
                    f"site {conn.key!r} closed the connection (check "
                    "its server log)"
                )
            conn.decoder.feed(data)
            for channel, value in conn.decoder.frames():
                progress = True
                if channel == wire.CHANNEL_DATA:
                    self._inbox.append(wire.message_from_wire(value))
                elif (isinstance(value, dict)
                        and value.get("ctrl") == "ack"):
                    conn.acks[value["token"]] = value
        return progress

    def _fire_due_timers(self) -> bool:
        fired = False
        now = self._mono()
        while self._timers and self._timers[0][0] <= now:
            __, __, timer = heapq.heappop(self._timers)
            if timer.cancelled:
                continue
            self.now = max(self.now, timer.when)
            timer.fired = True
            timer.callback()
            fired = True
        return fired

    def _next_timer_due(self) -> float | None:
        while self._timers and self._timers[0][2].cancelled:
            heapq.heappop(self._timers)
        if not self._timers:
            return None
        return self._timers[0][0]

    def _dispatch_inbox(self) -> bool:
        progress = False
        while self._inbox:
            message = self._inbox.pop(0)
            progress = True
            self.now = max(self.now, self._mono())
            if (message.src, message.dst) in self._partitions:
                # Same rule the sites apply: the link was severed when
                # the message would have arrived.
                self.stats.partitioned_drops += 1
                if self.observer is not None:
                    self.observer.on_drop(message.kind, message.size)
                self.delivered += 1
                continue
            node = self.nodes.get(message.dst)
            if node is None:
                # Meanwhile-detached client: the message crossed the
                # wire and dies here, billed like the simulator.
                self.stats.crashed_drops += 1
                self.delivered += 1
                continue
            if message.checksum and message.checksum != wire_checksum(
                    message.kind, message.payload, message.size):
                self.stats.corrupted += 1
                self.delivered += 1
                continue
            self.delivered += 1
            if self.observer is not None:
                self.observer.on_deliver(
                    message.kind, message.size,
                    self.now - message.send_time)
            node.handle(message)
        return progress

    def _service(self, timeout: float) -> bool:
        progress = self._pump(timeout)
        if self._fire_due_timers():
            progress = True
        if self._dispatch_inbox():
            progress = True
        return progress

    # -- control plane ---------------------------------------------------

    def _roundtrip(self, key: tuple, payload: dict,
                   timeout: float = CTRL_TIMEOUT) -> dict:
        conn = self._conns[key]
        token = next(self._tokens)
        request = dict(payload)
        request["token"] = token
        conn.outbuf += wire.encode_frame(wire.CHANNEL_CTRL, request)
        deadline = time.monotonic() + timeout
        while token not in conn.acks:
            self._pump(0.05)
            if time.monotonic() > deadline:
                raise LiveBackendError(
                    f"site {key!r} did not acknowledge "
                    f"{payload.get('ctrl')!r} within {timeout}s"
                )
        reply = conn.acks.pop(token)
        if not reply.get("ok", True):
            raise LiveBackendError(
                f"control {payload.get('ctrl')!r} failed at site "
                f"{key!r}: {reply.get('error')}"
            )
        return reply

    def _merge_site_stats(self, key: tuple,
                          snapshot: NetworkStats) -> None:
        """Fold a site's stats growth since the last census into the
        local stats object (additive, so the client's own billing —
        including its direct ``retries`` bumps — is preserved)."""
        baseline = self._site_baseline.get(key)
        delta = snapshot.diff(baseline) if baseline else snapshot
        self._site_baseline[key] = snapshot
        self.stats.messages += delta.messages
        self.stats.bytes += delta.bytes
        self.stats.by_kind.update(delta.by_kind)
        self.stats.bytes_by_kind.update(delta.bytes_by_kind)
        self.stats.dropped += delta.dropped
        self.stats.duplicated += delta.duplicated
        self.stats.retries += delta.retries
        self.stats.crashed_drops += delta.crashed_drops
        self.stats.partitioned_drops += delta.partitioned_drops
        self.stats.corrupted += delta.corrupted

    def _census(self) -> tuple[bool, tuple | None]:
        """One cluster-wide conservation census.

        Returns ``(quiescent, totals)``; ``totals`` feeds the
        two-identical-rounds rule in :meth:`run`."""
        self._sync_conns()
        sent = self._sent + self._reaped_sent
        delivered = self.delivered + self._reaped_delivered
        buffered = 0
        timers = 0 if self._next_timer_due() is None else 1
        missing: set[int] = set()
        for key in list(self._conns):
            reply = self._roundtrip(key, {"ctrl": "census"})
            sent += reply["sent"]
            delivered += reply["delivered"]
            buffered += reply["buffered"]
            timers += reply["timers"]
            missing.update(reply.get("missing") or ())
            self._merge_site_stats(key, reply["stats"])
        if missing:
            # Some site parked frames for unprovisioned addresses:
            # grow the cluster and let the flushed frames settle.
            self._ensure_site(max(missing) + 1)
            return False, None
        if self._inbox:
            # Data slipped in during the census: not idle after all.
            return False, None
        quiescent = (sent == delivered and buffered == 0
                     and timers == 0)
        return quiescent, (sent, delivered)

    def remote_metrics(self) -> dict[tuple, dict]:
        """Per-site metrics registries (for live tracing demos)."""
        result = {}
        for key in self._conns:
            reply = self._roundtrip(key, {"ctrl": "census"})
            self._merge_site_stats(key, reply["stats"])
            result[key] = reply["metrics"]
        return result

    def dump_buckets(self, name: str) -> dict[int, dict]:
        """All hosted buckets of file ``name`` (the live counterpart
        of reading ``file.buckets`` in the simulator)."""
        result: dict[int, dict] = {}
        for key in self._conns:
            if key[0] != "bucket":
                continue
            reply = self._roundtrip(key, {"ctrl": "dump",
                                          "name": name})
            result.update(reply["buckets"])
        return result

    def dump_parity(self, name: str) -> dict[tuple, dict]:
        """All hosted parity slot tables of file ``name``: one entry
        per ``(group, index)``, each mapping rank -> payload/rids/
        lengths — the raw material for the client-side
        parity-consistency oracle."""
        result: dict[tuple, dict] = {}
        for key in list(self._conns):
            if key[0] != "bucket":
                continue
            reply = self._roundtrip(key, {"ctrl": "dump_parity",
                                          "name": name})
            result.update(reply["slots"])
        return result

    def coordinator_state(self, name: str) -> dict:
        return self._roundtrip(("coordinator",), {"ctrl": "state",
                                                  "name": name})

    # -- elasticity: graceful leave and tombstone reaping -----------------

    def site_leave(self, name: str, address: int) -> bool:
        """Start a graceful departure of bucket ``address`` of file
        ``name``: an unbilled control verb asks the hosted coordinator
        to run its ``begin_leave``, and the drain itself (``leave``
        trigger, whole-bucket ``recover_install``, ``recover_done``)
        rides the billed data plane.  Returns whether the departure
        started (``False`` when the coordinator refused, e.g. the
        bucket is dead or already being probed)."""
        reply = self._roundtrip(("coordinator",), {
            "ctrl": "leave", "name": name, "address": address})
        return bool(reply["started"])

    def decommission(self, name: str, address: int) -> None:
        """Reap the retired (tombstone) bucket ``address`` of file
        ``name`` after its image catch-up window.

        The hosting site detaches the node (refusing unless it is a
        record-free tombstone); when that leaves the site with no
        hosted nodes at all, this network takes a final stats census
        from it, closes the connection and never redials — the
        process can then be retired via
        :meth:`LiveCluster.reap_site`.  Growing the file back onto a
        reaped address is out of scope: do not decommission addresses
        future growth will re-reach (see docs/SERVING.md)."""
        if not 0 <= address < len(self.config.buckets):
            raise ValueError(
                f"no site hosts bucket address {address}")
        key = ("bucket", address)
        self._connect_peer(key)
        reply = self._roundtrip(key, {
            "ctrl": "decommission", "name": name, "address": address})
        if not reply["empty"]:
            return
        # Merge the site's outstanding billing and conservation
        # counters before abandoning it (the census must keep
        # balancing without this site's row).
        census = self._roundtrip(key, {"ctrl": "census"})
        self._merge_site_stats(key, census["stats"])
        self._reaped_sent += census["sent"]
        self._reaped_delivered += census["delivered"]
        conn = self._conns.pop(key)
        try:
            conn.sock.close()
        except OSError:
            pass
        self._site_baseline.pop(key, None)
        self._reaped.add(address)

    # -- run to quiescence -----------------------------------------------

    def run(self, max_events: int = 10_000_000) -> int:
        """Pump until the whole cluster is quiescent.

        The live analogue of the simulator's event loop draining its
        queue: local sockets and timers first, then a cluster census;
        done when two consecutive censuses balance and agree."""
        start = self.delivered
        deadline = time.monotonic() + self.run_timeout
        last_totals: tuple | None = None
        while True:
            if time.monotonic() > deadline:
                raise LiveBackendError(
                    f"cluster did not quiesce within "
                    f"{self.run_timeout}s (sent={self._sent}, "
                    f"delivered={self.delivered})"
                )
            self.now = max(self.now, self._mono())
            if self.crashes is not None:
                self.crashes.advance(self, self.now)
            for schedule in list(self.schedules):
                schedule.advance(self, self.now)
            if self._service(0.002):
                last_totals = None
                continue
            due = self._next_timer_due()
            if due is not None:
                # A local timer (e.g. a retry timeout) is armed: wait
                # it out, but stay responsive to inbound data.
                wait = min(max(due - self._mono(), 0.0), 0.05)
                self._service(wait)
                last_totals = None
                continue
            quiescent, totals = self._census()
            if not quiescent:
                last_totals = None
                self._service(0.005)
                continue
            if totals == last_totals:
                return self.delivered - start
            last_totals = totals


# ---------------------------------------------------------------------------
# cluster lifecycle
# ---------------------------------------------------------------------------


def _free_ports(host: str, count: int) -> list[int]:
    """Reserve ``count`` distinct free TCP ports (standard
    bind-0-then-close trick; the tiny race is acceptable for tests)."""
    sockets = []
    ports = []
    try:
        for __ in range(count):
            sock = socket.socket()
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, 0))
            sockets.append(sock)
            ports.append(sock.getsockname()[1])
    finally:
        for sock in sockets:
            sock.close()
    return ports


def _tail(path: Path, lines: int = 20) -> str:
    try:
        content = path.read_text(errors="replace").splitlines()
    except OSError:
        return "<no log>"
    return "\n".join(content[-lines:])


class LiveCluster:
    """Spawns and supervises the site processes of one live cluster.

    >>> # with LiveCluster(buckets=4) as cluster:
    >>> #     network = cluster.connect()
    """

    def __init__(self, buckets: int = 4, host: str = "127.0.0.1",
                 log_dir: str | os.PathLike | None = None,
                 env: dict[str, str] | None = None,
                 startup_timeout: float = CONNECT_TIMEOUT,
                 codec_cache_dir: str | os.PathLike | None = None
                 ) -> None:
        if buckets < 1:
            raise ValueError("a cluster needs at least one bucket site")
        self.buckets = buckets
        self.host = host
        self.extra_env = dict(env or {})
        self.startup_timeout = startup_timeout
        #: Where site processes persist fused codec tables (see
        #: ``repro.core.kernels``).  ``None`` = a cluster-private
        #: directory inside the workdir, so a cluster's N bucket
        #: processes build each table once instead of N times.
        self.codec_cache_dir = codec_cache_dir
        self._log_dir = Path(log_dir) if log_dir else None
        self._tmp: tempfile.TemporaryDirectory | None = None
        self._site_log_dir: Path | None = None
        self._config_path: Path | None = None
        self._env: dict[str, str] | None = None
        self._procs: dict[tuple, subprocess.Popen] = {}
        self._logs: dict[tuple, Path] = {}
        self._networks: list[LiveNetwork] = []
        self.config: ClusterConfig | None = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "LiveCluster":
        self._tmp = tempfile.TemporaryDirectory(prefix="repro-live-")
        workdir = Path(self._tmp.name)
        log_dir = self._log_dir or workdir
        log_dir.mkdir(parents=True, exist_ok=True)
        self._site_log_dir = log_dir
        ports = _free_ports(self.host, self.buckets + 1)
        self.config = ClusterConfig(self.host, ports[0], ports[1:])
        self._config_path = workdir / "cluster.json"
        self.config.dump(str(self._config_path))

        env = dict(os.environ)
        env.update(self.extra_env)
        from repro.core.kernels import CODEC_CACHE_ENV

        cache_dir = Path(self.codec_cache_dir
                         or workdir / "codec-cache")
        cache_dir.mkdir(parents=True, exist_ok=True)
        env.setdefault(CODEC_CACHE_ENV, str(cache_dir))
        src_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        if src_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                src_root + (os.pathsep + existing if existing else "")
            )
        self._env = env

        try:
            for index in range(self.buckets):
                self._spawn(("bucket", index), "bucket", index)
            self._spawn(("coordinator",), "coordinator", 0)
            deadline = time.monotonic() + self.startup_timeout
            for key in list(self._procs):
                self._probe_ready(key, deadline)
        except BaseException:
            # Partial startup must not leak orphan site processes.
            self.shutdown()
            raise
        return self

    def _spawn(self, key: tuple, role: str, index: int) -> None:
        label = f"{role}-{index}" if role == "bucket" else role
        log_path = self._site_log_dir / f"{label}.log"
        handle = open(log_path, "wb")
        try:
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.net.serve",
                 "--role", role, "--index", str(index),
                 "--config", str(self._config_path)],
                stdout=handle, stderr=subprocess.STDOUT,
                env=self._env,
            )
        finally:
            handle.close()
        self._procs[key] = proc
        self._logs[key] = log_path

    def _probe_ready(self, key: tuple, deadline: float) -> None:
        """Wait until site ``key`` answers a ``ping`` control
        round-trip: retry with exponential backoff under a hard
        deadline, and fail loudly (with the site's log tail) if the
        process dies or the deadline passes."""
        assert self.config is not None
        host, port = self.config.peer_address(key)
        delay = 0.02
        while True:
            proc = self._procs[key]
            if proc.poll() is not None:
                raise LiveBackendError(
                    f"site process {key!r} exited with code "
                    f"{proc.returncode} during startup; log tail:\n"
                    + _tail(self._logs[key])
                )
            if time.monotonic() > deadline:
                raise LiveBackendError(
                    f"site {key!r} did not answer a ping within "
                    f"{self.startup_timeout}s; log tail:\n"
                    + _tail(self._logs[key])
                )
            if self._try_ping(host, port):
                return
            time.sleep(delay)
            delay = min(delay * 1.5, 0.5)

    @staticmethod
    def _try_ping(host: str, port: int) -> bool:
        """One ping control round-trip over a throwaway connection."""
        try:
            sock = socket.create_connection((host, port), timeout=1.0)
        except OSError:
            return False
        try:
            sock.settimeout(1.0)
            sock.sendall(wire.encode_frame(
                wire.CHANNEL_CTRL, {"ctrl": "ping", "token": 1}))
            decoder = wire.FrameDecoder()
            while True:
                data = sock.recv(1 << 16)
                if not data:
                    return False
                decoder.feed(data)
                for __, value in decoder.frames():
                    if (isinstance(value, dict)
                            and value.get("ctrl") == "ack"):
                        return True
        except (OSError, wire.WireError):
            return False
        finally:
            sock.close()

    def ensure_site(self, count: int) -> None:
        """Grow the cluster to at least ``count`` bucket sites
        (idempotent).  New processes read the re-dumped config; the
        caller (``LiveNetwork._ensure_site``) broadcasts the grown map
        to the already-running sites."""
        assert self.config is not None
        if count <= len(self.config.buckets):
            return
        start_index = len(self.config.buckets)
        new_ports = _free_ports(self.host, count - start_index)
        # Extend in place: every connected LiveNetwork shares this
        # ClusterConfig object and sees the growth immediately.
        self.config.buckets.extend(new_ports)
        self.config.dump(str(self._config_path))
        deadline = time.monotonic() + self.startup_timeout
        for offset in range(len(new_ports)):
            index = start_index + offset
            self._spawn(("bucket", index), "bucket", index)
        for offset in range(len(new_ports)):
            self._probe_ready(("bucket", start_index + offset),
                              deadline)
        self.buckets = len(self.config.buckets)

    def connect(self,
                run_timeout: float = DEFAULT_RUN_TIMEOUT) -> LiveNetwork:
        if self.config is None:
            raise LiveBackendError("cluster is not started")
        network = LiveNetwork(self.config, run_timeout=run_timeout)
        network._on_missing_site = self.ensure_site
        self._networks.append(network)
        return network

    def log_paths(self) -> dict[tuple, Path]:
        return dict(self._logs)

    def reap_site(self, index: int) -> None:
        """Retire the bucket-site process at ``index`` after its last
        hosted node was decommissioned: graceful ctrl shutdown over a
        throwaway connection, then wait (kill on timeout).  Idempotent
        — reaping an unknown or already-reaped index is a no-op.  The
        address stays in the cluster config so the remaining site
        indices keep their meaning; regrowth onto a reaped address is
        out of scope (see docs/SERVING.md)."""
        key = ("bucket", index)
        proc = self._procs.pop(key, None)
        if proc is None:
            return
        if proc.poll() is None:
            try:
                assert self.config is not None
                sock = socket.create_connection(
                    self.config.peer_address(key), timeout=2.0)
                sock.sendall(wire.encode_frame(
                    wire.CHANNEL_CTRL, {"ctrl": "shutdown"}))
                sock.close()
            except OSError:
                pass
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)

    def shutdown(self) -> None:
        for network in self._networks:
            network.close()
        self._networks.clear()
        for key, proc in self._procs.items():
            if proc.poll() is not None:
                continue
            try:
                assert self.config is not None
                sock = socket.create_connection(
                    self.config.peer_address(key), timeout=2.0)
                sock.sendall(wire.encode_frame(
                    wire.CHANNEL_CTRL, {"ctrl": "shutdown"}))
                sock.close()
            except OSError:
                pass
        for proc in self._procs.values():
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)
        self._procs.clear()
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None
        self.config = None

    def __enter__(self) -> "LiveCluster":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()
