"""Bucket and coordinator server processes for the live transport.

``python -m repro.net.serve --role bucket --index K --config cluster.json``
hosts LH* bucket ``K`` (one process per bucket address, for every file
name in the cluster); ``--role coordinator`` hosts the split
coordinators.  Both run the *unmodified* protocol actors from
:mod:`repro.sdds.lhstar` over an asyncio socket loop speaking the
:mod:`repro.net.wire` frame format — the protocol logic cannot drift
between the simulator and the live deployment because it is the same
code.

Each process owns:

* a :class:`SiteNetwork` — the :class:`~repro.net.simulator.Network`
  surface its local nodes see.  ``send`` bills the local
  :class:`~repro.net.stats.NetworkStats` at the declared size exactly
  like the simulator, then routes the frame to the hosting peer;
  ``schedule`` arms real-time asyncio timers with the simulator's
  crash-freeze semantics.
* a control plane (unbilled, ``CHANNEL_CTRL``): node creation, crash
  and restore flags, fault-rule installation (loss / duplication /
  corruption / latency / partitions — see ``fault_set``, ``partition``,
  ``heal``, ``delay``, ``drop``), census, record and parity dumps,
  shutdown.  Control traffic deliberately mirrors the simulator's
  unbilled *method calls* (``Network.crash`` etc.).
* conservation counters (data messages sent / delivered / buffered)
  the client's census sums to detect global quiescence — the live
  equivalent of the simulator's run-to-quiescence event loop.

Crashing a bucket process (``LiveNetwork.crash``) sets a flag at its
hosting site: inbound data for the node is dropped and billed as
``crashed_drops``, owned timers freeze, and ``restore`` re-arms them
— byte-for-byte the accounting of the simulated ``Network.crash``,
with records preserved across the outage.

v2 additions: a per-site seeded :class:`~repro.net.faults.FaultModel`
applied at the simulator's exact fault points (send-side loss /
duplication / checksum stamping, delivery-side partition and checksum
checks), LH*_RS parity hosting (``create_parity`` / ``create_spare``
control verbs; parity deltas and the whole recovery gather run over
TCP, billed), and elastic growth: a frame for a bucket address beyond
the provisioned site count is *parked* and reported in the census so
the cluster can spawn the missing site and re-deliver (``config``).

v3 additions: elasticity in both directions.  Shrinking files and
controlled split policies are hosted (buckets of load-tracking files
report ``load``/``underflow`` deltas so the remote coordinator's
global record count stays exact), merges retire live tombstones whose
``merge_records`` shipments ride the billed data plane, a ``leave``
control verb triggers the coordinator's graceful-departure drain, and
a ``decommission`` control verb reaps an empty tombstone after its
image catch-up window (reporting when the site has no hosted nodes
left, so the whole process can be retired).

See ``docs/SERVING.md`` for the topology and wire format.
"""

from __future__ import annotations

import argparse
import asyncio
import heapq
import json
import logging
import sys
from typing import Any, Callable, Hashable

from repro.errors import UnknownNodeError
from repro.net import wire
from repro.net.faults import RELIABLE_KINDS, FaultModel
from repro.net.simulator import Message, Node, Timer, wire_checksum
from repro.net.stats import NetworkStats
from repro.obs import metrics as obs_metrics

log = logging.getLogger("repro.net.serve")

#: Seconds between redials while a peer site is still starting up.
DIAL_RETRY_DELAY = 0.2
#: Give up dialing a peer after this many seconds.
DIAL_TIMEOUT = 30.0


class ClusterConfig:
    """The cluster's address map, shared by every process via JSON."""

    def __init__(self, host: str, coordinator: int,
                 buckets: list[int]) -> None:
        self.host = host
        self.coordinator = coordinator
        self.buckets = list(buckets)

    @classmethod
    def load(cls, path: str) -> "ClusterConfig":
        with open(path, encoding="utf-8") as handle:
            raw = json.load(handle)
        return cls(raw["host"], raw["coordinator"], raw["buckets"])

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"host": self.host,
                       "coordinator": self.coordinator,
                       "buckets": self.buckets}, handle)

    def peer_address(self, key: tuple) -> tuple[str, int]:
        if key[0] == "coordinator":
            return self.host, self.coordinator
        return self.host, self.buckets[key[1]]


def peer_of(node_id: Hashable,
            group_size: int | None = None) -> tuple | None:
    """The hosting-process key of a protocol node id, or ``None``
    for client nodes (which live in the connecting process).

    Parity ids ``("parity", name, group, index)`` are placed on the
    bucket site ``group * group_size + index`` — deterministic, stable
    under file growth, and distinct per parity bucket as long as
    ``parity_count <= group_size`` (enforced at attach time).  Without
    ``group_size`` the placement is unknown and ``None`` is returned.
    """
    if not isinstance(node_id, tuple) or not node_id:
        return None
    if node_id[0] == "bucket":
        return ("bucket", node_id[2])
    if node_id[0] == "coordinator":
        return ("coordinator",)
    if (node_id[0] == "parity" and len(node_id) == 4
            and group_size is not None):
        return ("bucket", node_id[2] * group_size + node_id[3])
    return None


# ---------------------------------------------------------------------------
# shell files: the LHStarFile surface the hosted actors consume
# ---------------------------------------------------------------------------


class _StubBucket:
    """Placeholder for a bucket hosted in another process."""

    records: dict = {}


class _StubBuckets:
    """The coordinator's ``file.buckets`` view in live mode.

    The coordinator only reads it for a load metric on split
    (``len(file.buckets[n].records)``); the real records live in the
    bucket processes, so the metric observes 0 here — a documented
    live-mode deviation that touches metrics only, never protocol."""

    def __getitem__(self, address: int) -> _StubBucket:
        return _StubBucket()

    def get(self, address: int) -> _StubBucket:
        return _StubBucket()


class ShellFile:
    """The slice of :class:`~repro.sdds.lhstar.LHStarFile` a hosted
    actor actually touches, reconstructed from a ``create_*`` control
    message.  Identifier formulas are duplicated *by value* from the
    real file (asserted equal in the test suite)."""

    def __init__(self, server: "SiteServer", name: str,
                 bucket_capacity: int, shrink: bool,
                 split_policy: str, load_factor_threshold: float,
                 merge_threshold: float, retry_policy,
                 rs: dict | None = None) -> None:
        self.server = server
        self.network = server.network
        self.name = name
        self.bucket_capacity = bucket_capacity
        self.shrink = shrink
        self.split_policy = split_policy
        self.load_factor_threshold = load_factor_threshold
        self.merge_threshold = merge_threshold
        self.retry_policy = retry_policy
        #: Derived exactly like ``LHStarFile.tracks_load``: buckets of
        #: tracking files report net-new stores (``load``) and deletes
        #: (``underflow``) so the remote coordinator's global record
        #: count stays exact without reading bucket contents.
        self.tracks_load = shrink or split_policy == "load_factor"
        self.record_count = 0
        #: LH*_RS parameters (``{"group_size": m, "parity_count": k}``)
        #: or ``None`` for plain LH*.  When set, locally hosted data
        #: buckets emit billed ``parity_delta`` messages exactly like
        #: :class:`~repro.sdds.lhstar_rs.LHStarRSFile`, with the rank
        #: tables living at the hosting site.
        self.rs = dict(rs) if rs else None
        self.group_size = self.rs["group_size"] if self.rs else None
        self.parity_count = self.rs["parity_count"] if self.rs else None
        self._generator = None
        self._ranks: dict[int, dict[int, int]] = {}
        self._free_ranks: dict[int, list[int]] = {}
        self._next_rank: dict[int, int] = {}
        #: The locally hosted buckets of this file (at most one per
        #: bucket process); the coordinator sees stubs instead.
        self.local_buckets: dict[int, Any] = {}

    # -- identifiers (same formulas as LHStarFile) -----------------------

    def bucket_id(self, address: int) -> Hashable:
        return ("bucket", self.name, address)

    def client_id(self, index: int) -> Hashable:
        return ("client", self.name, index)

    @property
    def coordinator_id(self) -> Hashable:
        return ("coordinator", self.name)

    def parity_id(self, group: int, index: int) -> Hashable:
        return ("parity", self.name, group, index)

    def group_of(self, address: int) -> int:
        return address // self.group_size

    def offset_of(self, address: int) -> int:
        return address % self.group_size

    @property
    def generator(self):
        """The group's Cauchy generator (same matrix as the real
        :class:`~repro.sdds.lhstar_rs.LHStarRSFile`), built lazily so
        plain-LH* shells never import the parity layer."""
        if self._generator is None:
            from repro.sdds.lhstar_rs import generator_matrix

            self._generator = generator_matrix(self.group_size,
                                               self.parity_count)
        return self._generator

    def _shell_params(self) -> dict:
        """The creation parameters another site needs to rebuild this
        shell (forwarded verbatim in ``create_*`` control verbs)."""
        return {
            "name": self.name,
            "bucket_capacity": self.bucket_capacity,
            "shrink": self.shrink,
            "split_policy": self.split_policy,
            "load_factor_threshold": self.load_factor_threshold,
            "merge_threshold": self.merge_threshold,
            "retry_policy": self.retry_policy,
            "rs": self.rs,
        }

    # -- rank management (mirrors LHStarRSFile, per hosted address) -------

    def init_ranks(self, address: int) -> None:
        """Prepare (or preserve, across a spare swap) the rank tables
        of a locally hosted data bucket.  Tables survive crash →
        ``create_spare``: the parity buckets still hold the dead
        bucket's contributions under the original ranks, and the
        reconstructed records are re-installed without re-emitting."""
        if self.rs is None:
            return
        self._ranks.setdefault(address, {})
        self._free_ranks.setdefault(address, [])
        self._next_rank.setdefault(address, 0)

    def _assign_rank(self, address: int, rid: int) -> int:
        ranks = self._ranks[address]
        if rid in ranks:
            return ranks[rid]
        free = self._free_ranks[address]
        if free:
            rank = heapq.heappop(free)
        else:
            rank = self._next_rank[address]
            self._next_rank[address] += 1
        ranks[rid] = rank
        return rank

    def _release_rank(self, address: int, rid: int) -> int:
        rank = self._ranks[address].pop(rid)
        heapq.heappush(self._free_ranks[address], rank)
        return rank

    def _send_delta(self, address: int, rank: int, rid: int | None,
                    delta: bytes, length: int) -> None:
        from repro.sdds.lhstar import HEADER_SIZE

        group = self.group_of(address)
        offset = self.offset_of(address)
        for index in range(self.parity_count):
            self.network.send(
                self.bucket_id(address),
                self.parity_id(group, index),
                "parity_delta",
                {"rank": rank, "offset": offset, "rid": rid,
                 "delta": delta, "length": length},
                size=HEADER_SIZE + len(delta),
            )

    # -- bookkeeping hooks (parity deltas when ``rs`` is set) -------------

    def on_store(self, address, record, old) -> None:
        if old is None:
            self.record_count += 1
        if self.rs is None:
            return
        from repro.sdds.lhstar_rs import _xor

        rank = self._assign_rank(address, record.rid)
        delta = _xor(record.content, old.content if old else b"")
        self._send_delta(address, rank, record.rid, delta,
                         len(record.content))

    def on_remove(self, address, record) -> None:
        self.record_count -= 1
        if self.rs is None:
            return
        rank = self._release_rank(address, record.rid)
        self._send_delta(address, rank, None, record.content, 0)

    def on_move(self, old, new, record) -> None:
        if self.rs is None:
            return
        ranks = self._ranks.get(old)
        rank = None if ranks is None else ranks.pop(record.rid, None)
        if rank is None:
            return
        heapq.heappush(self._free_ranks[old], rank)
        self._send_delta(old, rank, None, record.content, 0)

    def on_absorb(self, address, record, old) -> None:
        if self.rs is None:
            return
        from repro.sdds.lhstar_rs import _xor

        rank = self._assign_rank(address, record.rid)
        delta = _xor(record.content, old.content if old else b"")
        self._send_delta(address, rank, record.rid, delta,
                         len(record.content))

    # -- crash-recovery hooks (overridden on the coordinator shell) -------

    def begin_recovery(self, address: int, level: int) -> bool:
        return False

    def finish_recovery(self, address: int) -> None:
        pass

    def recovery_group(self, address: int) -> list[int]:
        return [address]

    def degraded_read_target(self, address: int):
        if self.rs is None:
            return None
        return self.parity_id(self.group_of(address), 0)

    def degraded_dead_set(self, address, dead) -> list[int]:
        if self.rs is None:
            return [address]
        members = self.recovery_group(address)
        return sorted({m for m in members if m in dead} | {address})

    def retire_bucket(self, address: int) -> None:
        pass


class CoordinatorShellFile(ShellFile):
    """Coordinator-side shell: splits create buckets *remotely*, and
    (for LH*_RS files) drive parity creation and spare spawning."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Every bucket address ever created for this file (bucket 0
        #: exists from file construction) — the coordinator's view of
        #: group membership for recovery.
        self.created: set[int] = {0}
        #: Groups whose parity buckets exist.  Group 0's parity is
        #: created by the connecting client at attach time; later
        #: groups are created here, on the split that opens them.
        self._parity_groups: set[int] = {0}

    @property
    def buckets(self) -> _StubBuckets:
        return _StubBuckets()

    def create_bucket(self, address: int, level: int,
                      pending: bool = False) -> None:
        """The live form of the coordinator's split-side bucket
        creation: an (unbilled) control message to the hosting site.
        The data-plane ``split_records`` shipment may still overtake
        it — the site buffers data for a locally owned, not yet
        created node until creation lands."""
        self.server.send_ctrl(("bucket", address), {
            "ctrl": "create_bucket",
            "address": address,
            "level": level,
            "pending": pending,
            **self._shell_params(),
        })
        self.created.add(address)
        if self.rs is None:
            return
        group = self.group_of(address)
        if group in self._parity_groups:
            return
        self._parity_groups.add(group)
        for index in range(self.parity_count):
            self.server.send_ctrl(
                ("bucket", group * self.group_size + index),
                {"ctrl": "create_parity", "group": group,
                 "index": index, **self._shell_params()})

    def recovery_group(self, address: int) -> list[int]:
        if self.rs is None:
            return [address]
        base = self.group_of(address) * self.group_size
        return [base + offset for offset in range(self.group_size)
                if (base + offset) in self.created]

    def begin_recovery(self, address: int, level: int) -> bool:
        """The live form of ``LHStarRSFile.begin_recovery``: spawn the
        spare *remotely* (unbilled control verb to the dead bucket's
        site, mirroring the simulator's unbilled ``spawn_spare``) and
        ask the group's first parity bucket — over the billed data
        plane — to gather, solve, and install."""
        if self.rs is None:
            return False
        from repro.sdds.lhstar import HEADER_SIZE

        coordinator = self.network.nodes.get(self.coordinator_id)
        dead = self.degraded_dead_set(
            address, coordinator.dead if coordinator is not None else {})
        if len(dead) > self.parity_count:
            return False
        group = self.group_of(address)
        obs_metrics.inc("lh.recover")
        self.server.send_ctrl(("bucket", address), {
            "ctrl": "create_spare",
            "address": address,
            "level": level,
            **self._shell_params(),
        })
        self.network.send(
            self.coordinator_id,
            self.parity_id(group, 0),
            "recover",
            {"address": address, "dead": dead},
            size=HEADER_SIZE,
        )
        return True


class _AllAddresses:
    """Containment-only ``file.buckets`` view for parity buckets
    hosted at a bucket site.  A gather skips group members with no
    contributing rids before it ever consults membership, so claiming
    every address exists is safe — and the site cannot know the true
    global bucket set without a census."""

    def __contains__(self, address: int) -> bool:
        return True


class BucketShellFile(ShellFile):
    """Bucket-side shell: exposes the hosted bucket for dumps."""

    @property
    def buckets(self):
        if self.rs is not None:
            return _AllAddresses()
        return self.local_buckets

    def spawn_spare(self, address: int, level: int) -> None:
        """Swap the locally hosted bucket for a fresh pending spare
        under the same network identity — invoked by the bucket itself
        during a graceful ``leave`` drain, unbilled like the
        simulator's direct method call.  Rank tables and the retired /
        merge-target flags persist across the swap, so the in-flight
        ``recover_install`` shipment re-installs without re-emitting
        parity."""
        from repro.sdds.lhstar import LHStarBucket

        if address != self.server.index:
            raise ValueError(
                f"bucket {address} does not live on site "
                f"{self.server.index}")
        self.init_ranks(address)
        node_id = self.bucket_id(address)
        old = self.local_buckets.get(address)
        if node_id in self.network.nodes:
            self.network.detach(node_id)
        self.server.crashed.discard(node_id)
        self.server._frozen.pop(node_id, None)
        spare = LHStarBucket(self, address, level, pending=True)
        if old is not None:
            spare.retired = old.retired
            spare.merge_target = old.merge_target
        self.local_buckets[address] = spare
        self.network.attach(spare)
        for message in self.server.buffered.pop(node_id, []):
            self.server.deliver(message)


# ---------------------------------------------------------------------------
# the per-process network
# ---------------------------------------------------------------------------


class SiteNetwork:
    """The ``Network`` surface hosted nodes see inside one process.

    ``send`` bills the local stats at the *declared* size — the same
    accounting point as the simulator — and hands the message to the
    server for socket routing.  ``schedule`` arms wall-clock timers
    with owner-crash freezing."""

    def __init__(self, server: "SiteServer") -> None:
        self.server = server
        self.stats = NetworkStats()
        self.observer: Any | None = None
        self.nodes: dict[Hashable, Node] = {}
        self.now = 0.0

    def attach(self, node: Node) -> Node:
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        node.network = self
        self.nodes[node.node_id] = node
        return node

    def detach(self, node_id: Hashable) -> None:
        node = self.nodes.pop(node_id, None)
        if node is None:
            raise UnknownNodeError(f"unknown node {node_id!r}")
        node.network = None

    def __contains__(self, node_id: Hashable) -> bool:
        return node_id in self.nodes

    def send(self, src, dst, kind, payload=None, size=64,
             hops=0) -> Message:
        """Bill, apply send-side faults, and route.

        The fault points and their order are the simulator's exactly:
        bill once at the declared size, then — for kinds the fault
        model covers — draw loss, duplication, and (when corruption is
        enabled) stamp a wire checksum and maybe flip one bit per
        shipped copy.  A dropped message is billed but never routed,
        so the census stays conserved (``sent`` only counts shipped
        copies, each of which is eventually ``delivered`` somewhere).
        """
        payload = payload or {}
        self.stats.record(kind, size)
        if self.observer is not None:
            self.observer.on_send(kind, size)
        server = self.server
        faults = server.faults
        message = Message(src=src, dst=dst, kind=kind,
                          payload=payload, size=size, hops=hops)
        copies = 1
        base_checksum = 0
        eligible = (faults.applies(kind) if faults is not None
                    else kind not in RELIABLE_KINDS)
        if eligible and server.force_drops > 0:
            server.force_drops -= 1
            self.stats.dropped += 1
            if self.observer is not None:
                self.observer.on_drop(kind, size)
            return message
        if faults is not None and faults.applies(kind):
            if faults.drops():
                self.stats.dropped += 1
                if self.observer is not None:
                    self.observer.on_drop(kind, size)
                return message
            if faults.duplicates():
                copies = 2
            if faults.corruption_rate > 0:
                base_checksum = wire_checksum(kind, payload, size)
        first: Message | None = None
        for copy in range(copies):
            if copy:
                self.stats.record(kind, size)
                self.stats.duplicated += 1
                if self.observer is not None:
                    self.observer.on_send(kind, size)
            checksum = base_checksum
            if base_checksum and faults.corrupts():
                checksum ^= 1 << faults.corrupt_bit()
                if checksum == 0:
                    checksum = 0xFFFFFFFF
            shipped = Message(src=src, dst=dst, kind=kind,
                              payload=payload, size=size, hops=hops,
                              checksum=checksum)
            server.sent += 1
            server.route(shipped)
            if first is None:
                first = shipped
        return first

    def schedule(self, delay: float, callback: Callable[[], None],
                 owner: Hashable | None = None) -> Timer:
        return self.server.schedule(delay, callback, owner)

    def is_crashed(self, node_id: Hashable) -> bool:
        return node_id in self.server.crashed


# ---------------------------------------------------------------------------
# the server process
# ---------------------------------------------------------------------------


class SiteServer:
    """One cluster process: a bucket site or the coordinator site."""

    def __init__(self, role: str, index: int,
                 config: ClusterConfig) -> None:
        if role not in ("bucket", "coordinator"):
            raise ValueError(f"unknown role {role!r}")
        self.role = role
        self.index = index
        self.config = config
        self.network = SiteNetwork(self)
        self.files: dict[str, ShellFile] = {}
        #: Crashed node ids (delivery-time drops, frozen timers).
        self.crashed: set[Hashable] = set()
        self._frozen: dict[Hashable, list[Timer]] = {}
        #: Data messages buffered for a locally owned node that has
        #: not been created yet (a split shipment overtaking its
        #: control-plane ``create_bucket``).
        self.buffered: dict[Hashable, list[Message]] = {}
        #: Conservation counters for the client's quiescence census.
        self.sent = 0
        self.delivered = 0
        #: Fault state installed by the ctrl plane (``fault_set``,
        #: ``partition``, ``delay``, ``drop``) — ``None`` until the
        #: client enables fault injection.
        self.faults: FaultModel | None = None
        self._fault_seed: int | None = None
        #: Directed ``(src, dst)`` node-id pairs whose delivery this
        #: site refuses (billed as ``partitioned_drops``).
        self.partitions: set[tuple] = set()
        #: Extra seconds every locally sent data message is held
        #: before routing (the live form of a latency spike).
        self.delay_extra = 0.0
        #: Deterministically drop the next N fault-eligible sends.
        self.force_drops = 0
        #: Frames destined for bucket sites beyond the current config
        #: — parked until a ``config`` update provisions the site.
        self._parked: dict[int, list[bytes]] = {}
        #: LH*_RS layout per file name, learned from ``create_*``
        #: payloads; needed to place parity ids on their host sites.
        self.rs_params: dict[str, tuple[int, int]] = {}
        #: Registered client connections: node id -> StreamWriter.
        self.clients: dict[Hashable, asyncio.StreamWriter] = {}
        self._out: dict[tuple, asyncio.Queue] = {}
        self._tasks: list[asyncio.Task] = []
        self._armed: set[Timer] = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stopping: asyncio.Event | None = None
        self.metrics = obs_metrics.MetricsRegistry()

    # -- timers ----------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None],
                 owner: Hashable | None = None) -> Timer:
        if delay < 0:
            raise ValueError("timer delay must be non-negative")
        assert self._loop is not None
        timer = Timer(self._loop.time() + delay, callback, owner=owner)
        self._armed.add(timer)
        self._loop.call_later(delay, self._fire, timer)
        return timer

    def _fire(self, timer: Timer) -> None:
        self._armed.discard(timer)
        if timer.cancelled:
            return
        if timer.owner is not None and timer.owner in self.crashed:
            # The owner is down: freeze; restore() re-arms due now.
            self._frozen.setdefault(timer.owner, []).append(timer)
            return
        timer.fired = True
        try:
            timer.callback()
        except Exception:
            log.exception("timer callback failed")

    def armed_timers(self) -> int:
        return sum(1 for timer in self._armed if not timer.cancelled)

    # -- routing ---------------------------------------------------------

    def _peer_of(self, dst: Hashable) -> tuple | None:
        """Parity-aware :func:`peer_of`: resolve parity ids with the
        file's registered group size."""
        peer = peer_of(dst)
        if (peer is None and isinstance(dst, tuple) and dst
                and dst[0] == "parity" and len(dst) == 4):
            rs = self.rs_params.get(dst[1])
            if rs is not None:
                peer = peer_of(dst, group_size=rs[0])
        return peer

    def route(self, message: Message) -> None:
        """Ship one locally sent data message toward its host."""
        if self.delay_extra > 0:
            # Latency spike: hold the frame at the sender.  The census
            # sees sent > delivered while held, so quiescence waits —
            # the live analogue of an undelivered in-flight message.
            assert self._loop is not None
            self._loop.call_later(self.delay_extra, self._route_now,
                                  message)
            return
        self._route_now(message)

    def _route_now(self, message: Message) -> None:
        dst = message.dst
        if dst in self.network.nodes or self._locally_owned(dst):
            # Same-process delivery (possible for tombstone revivals);
            # defer a tick to keep handle() non-reentrant.
            assert self._loop is not None
            self._loop.call_soon(self.deliver, message)
            return
        if isinstance(dst, tuple) and dst and dst[0] == "client":
            writer = self.clients.get(dst)
            if writer is None:
                log.error("no registered connection for client %r; "
                          "message %r dropped", dst, message.kind)
                self.network.stats.crashed_drops += 1
                self.delivered += 1  # consumed, keeps census conserved
                return
            writer.write(wire.encode_frame(
                wire.CHANNEL_DATA, wire.message_to_wire(message)))
            return
        peer = self._peer_of(dst)
        if peer is None:
            log.error("unroutable destination %r for kind %r", dst,
                      message.kind)
            self.network.stats.crashed_drops += 1
            self.delivered += 1
            return
        frame = wire.encode_frame(wire.CHANNEL_DATA,
                                  wire.message_to_wire(message))
        if peer[0] == "bucket" and peer[1] >= len(self.config.buckets):
            # The file grew past the provisioned sites: park the frame
            # and surface the gap through the census so the cluster
            # can spawn the missing site and re-deliver.
            self._parked.setdefault(peer[1], []).append(frame)
            return
        self._peer_queue(peer).put_nowait(frame)

    def send_ctrl(self, peer: tuple, payload: dict) -> None:
        """Fire-and-forget control message to another site."""
        frame = wire.encode_frame(wire.CHANNEL_CTRL, payload)
        if peer[0] == "bucket" and peer[1] >= len(self.config.buckets):
            self._parked.setdefault(peer[1], []).append(frame)
            return
        self._peer_queue(peer).put_nowait(frame)

    def _peer_queue(self, peer: tuple) -> asyncio.Queue:
        queue = self._out.get(peer)
        if queue is None:
            queue = self._out[peer] = asyncio.Queue()
            self._tasks.append(asyncio.ensure_future(
                self._peer_writer(peer, queue)))
        return queue

    async def _peer_writer(self, peer: tuple,
                           queue: asyncio.Queue) -> None:
        """One outbound connection per peer process: dial (with
        retries while the peer boots), then stream frames in FIFO
        order — the live transport's per-link TCP ordering."""
        host, port = self.config.peer_address(peer)
        writer = None
        assert self._loop is not None
        deadline = self._loop.time() + DIAL_TIMEOUT
        while writer is None:
            try:
                reader, writer = await asyncio.open_connection(
                    host, port)
            except OSError:
                if self._loop.time() > deadline:
                    log.error("cannot reach peer %r at %s:%s",
                              peer, host, port)
                    return
                await asyncio.sleep(DIAL_RETRY_DELAY)
        # Drain anything the peer writes back (control acks are never
        # requested on this link, but decode errors should be loud).
        self._tasks.append(asyncio.ensure_future(
            self._read_frames(reader, writer)))
        while True:
            data = await queue.get()
            writer.write(data)
            await writer.drain()

    def _locally_owned(self, node_id: Hashable) -> bool:
        """Whether this process is the host of ``node_id`` (even if
        the node has not been created yet)."""
        if not isinstance(node_id, tuple) or not node_id:
            return False
        if self.role == "bucket":
            if (node_id[0] == "bucket" and len(node_id) == 3
                    and node_id[2] == self.index):
                return True
            if node_id[0] == "parity" and len(node_id) == 4:
                rs = self.rs_params.get(node_id[1])
                if rs is None:
                    # Placement is deterministic and the sender knew
                    # the layout; a parity frame arriving here is ours
                    # — buffer until ``create_parity`` lands.
                    return True
                return node_id[2] * rs[0] + node_id[3] == self.index
            return False
        return node_id[0] == "coordinator"

    # -- delivery --------------------------------------------------------

    def deliver(self, message: Message) -> None:
        """Delivery-side checks, in the simulator's exact order:
        partition, crashed destination, then checksum verification."""
        dst = message.dst
        if (message.src, dst) in self.partitions:
            self.network.stats.partitioned_drops += 1
            if self.network.observer is not None:
                self.network.observer.on_drop(message.kind,
                                              message.size)
            self.delivered += 1
            return
        if dst in self.crashed:
            # The frame crossed the wire and dies at the dead host's
            # door — billed exactly like the simulator.
            self.network.stats.crashed_drops += 1
            if self.network.observer is not None:
                self.network.observer.on_drop(message.kind,
                                              message.size)
            self.delivered += 1
            return
        node = self.network.nodes.get(dst)
        if node is None:
            if self._locally_owned(dst):
                self.buffered.setdefault(dst, []).append(message)
                return
            log.error("message %r for %r reached the wrong site",
                      message.kind, dst)
            self.delivered += 1
            return
        if message.checksum and message.checksum != wire_checksum(
                message.kind, message.payload, message.size):
            self.network.stats.corrupted += 1
            if self.network.observer is not None:
                self.network.observer.on_drop(message.kind,
                                              message.size)
            self.delivered += 1
            return
        self.delivered += 1
        if self.network.observer is not None:
            self.network.observer.on_deliver(message.kind,
                                             message.size, 0.0)
        try:
            node.handle(message)
        except Exception:
            log.exception("node %r failed handling %r", dst,
                          message.kind)

    # -- control plane ---------------------------------------------------

    def _shell_file(self, payload: dict) -> ShellFile:
        name = payload["name"]
        rs = payload.get("rs")
        if rs:
            self.rs_params[name] = (rs["group_size"],
                                    rs["parity_count"])
        shell = self.files.get(name)
        if shell is None:
            cls = (BucketShellFile if self.role == "bucket"
                   else CoordinatorShellFile)
            shell = cls(
                self, name,
                bucket_capacity=payload["bucket_capacity"],
                shrink=payload["shrink"],
                split_policy=payload["split_policy"],
                load_factor_threshold=payload[
                    "load_factor_threshold"],
                merge_threshold=payload["merge_threshold"],
                retry_policy=payload["retry_policy"],
                rs=rs,
            )
            self.files[name] = shell
        return shell

    def handle_ctrl(self, payload: dict,
                    writer: asyncio.StreamWriter) -> None:
        ctrl = payload.get("ctrl")
        token = payload.get("token")
        try:
            reply = self._dispatch_ctrl(ctrl, payload, writer)
        except Exception as exc:
            log.exception("control %r failed", ctrl)
            reply = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        if token is not None:
            reply = dict(reply or {})
            reply.setdefault("ok", True)
            reply["ctrl"] = "ack"
            reply["token"] = token
            writer.write(wire.encode_frame(wire.CHANNEL_CTRL, reply))

    def _dispatch_ctrl(self, ctrl: str, payload: dict,
                       writer: asyncio.StreamWriter) -> dict | None:
        if ctrl == "ping":
            return {"role": self.role, "index": self.index}
        if ctrl == "register_client":
            self.clients[payload["node"]] = writer
            return {}
        if ctrl == "create_bucket":
            return self._ctrl_create_bucket(payload)
        if ctrl == "create_coordinator":
            return self._ctrl_create_coordinator(payload)
        if ctrl == "create_parity":
            return self._ctrl_create_parity(payload)
        if ctrl == "create_spare":
            return self._ctrl_create_spare(payload)
        if ctrl == "leave":
            return self._ctrl_leave(payload)
        if ctrl == "decommission":
            return self._ctrl_decommission(payload)
        if ctrl == "crash":
            node = payload["node"]
            known = node in self.network.nodes
            if known:
                self.crashed.add(node)
            return {"known": known}
        if ctrl == "restore":
            return self._ctrl_restore(payload["node"])
        if ctrl == "fault_set":
            return self._ctrl_fault_set(payload)
        if ctrl == "partition":
            self.partitions.update(
                (link[0], link[1]) for link in payload["links"])
            return {}
        if ctrl == "heal":
            if payload.get("all"):
                self.partitions.clear()
            else:
                for link in payload["links"]:
                    self.partitions.discard((link[0], link[1]))
            return {}
        if ctrl == "delay":
            self.delay_extra = float(payload["extra"])
            return {}
        if ctrl == "drop":
            self.force_drops += int(payload["count"])
            return {}
        if ctrl == "config":
            return self._ctrl_config(payload)
        if ctrl == "census":
            return {
                "sent": self.sent,
                "delivered": self.delivered,
                "buffered": (sum(len(q) for q in
                                 self.buffered.values())
                             + sum(len(q) for q in
                                   self._parked.values())),
                "timers": self.armed_timers(),
                "stats": self.network.stats.snapshot(),
                "metrics": self.metrics.to_dict(),
                "missing": sorted(self._parked),
            }
        if ctrl == "dump":
            return self._ctrl_dump(payload["name"])
        if ctrl == "dump_parity":
            return self._ctrl_dump_parity(payload["name"])
        if ctrl == "state":
            return self._ctrl_state(payload["name"])
        if ctrl == "shutdown":
            assert self._stopping is not None
            self._loop.call_soon(self._stopping.set)
            return {}
        raise ValueError(f"unknown control message {ctrl!r}")

    def _ctrl_create_bucket(self, payload: dict) -> dict:
        from repro.sdds.lhstar import LHStarBucket

        if self.role != "bucket":
            raise ValueError("create_bucket sent to the coordinator")
        address = payload["address"]
        if address != self.index:
            raise ValueError(
                f"bucket {address} does not live on site {self.index}"
            )
        shell = self._shell_file(payload)
        existing = shell.local_buckets.get(address)
        if existing is not None:
            if not existing.retired:
                raise ValueError(f"bucket {address} already exists")
            existing.retired = False
            existing.merge_target = None
            existing.level = payload["level"]
            existing.pending = payload["pending"]
            return {"revived": True}
        shell.init_ranks(address)
        bucket = LHStarBucket(shell, address, payload["level"],
                              pending=payload["pending"])
        shell.local_buckets[address] = bucket
        self.network.attach(bucket)
        # A split shipment may have overtaken this control message:
        # deliver anything buffered for the new node, in arrival order.
        for message in self.buffered.pop(bucket.node_id, []):
            self.deliver(message)
        return {}

    def _ctrl_create_coordinator(self, payload: dict) -> dict:
        from repro.sdds.lhstar import LHStarCoordinator

        if self.role != "coordinator":
            raise ValueError(
                "create_coordinator sent to a bucket site")
        shell = self._shell_file(payload)
        node_id = shell.coordinator_id
        if node_id in self.network.nodes:
            raise ValueError(
                f"coordinator for file {payload['name']!r} exists")
        coordinator = LHStarCoordinator(shell)
        self.network.attach(coordinator)
        for message in self.buffered.pop(node_id, []):
            self.deliver(message)
        return {}

    def _ctrl_create_parity(self, payload: dict) -> dict:
        from repro.sdds.lhstar_rs import ParityBucket

        if self.role != "bucket":
            raise ValueError("create_parity sent to the coordinator")
        shell = self._shell_file(payload)
        if shell.rs is None:
            raise ValueError("create_parity for a plain LH* file")
        group, index = payload["group"], payload["index"]
        if group * shell.group_size + index != self.index:
            raise ValueError(
                f"parity ({group}, {index}) does not live on site "
                f"{self.index}")
        node_id = shell.parity_id(group, index)
        if node_id in self.network.nodes:
            return {"existed": True}
        parity = ParityBucket(shell, group, index)
        self.network.attach(parity)
        for message in self.buffered.pop(node_id, []):
            self.deliver(message)
        return {}

    def _ctrl_create_spare(self, payload: dict) -> dict:
        """Replace a dead local bucket with a fresh pending spare
        under the same network identity — the live, remote form of
        ``LHStarFile.spawn_spare`` (unbilled, like the simulator's
        direct method call).  Records are gone; rank tables persist so
        the reconstruction can re-install without re-emitting parity."""
        if self.role != "bucket":
            raise ValueError("create_spare sent to the coordinator")
        shell = self._shell_file(payload)
        shell.spawn_spare(payload["address"], payload["level"])
        return {}

    def _ctrl_leave(self, payload: dict) -> dict:
        """Trigger a graceful departure of bucket ``address``: the
        hosted coordinator runs its ordinary ``begin_leave`` and the
        drain itself (``leave`` trigger, ``recover_install`` shipment,
        ``recover_done`` ack) flows over the billed data plane."""
        if self.role != "coordinator":
            raise ValueError("leave sent to a bucket site")
        node = self.network.nodes.get(
            ("coordinator", payload["name"]))
        if node is None:
            raise ValueError(
                f"no coordinator for file {payload['name']!r}")
        return {"started": node.begin_leave(payload["address"])}

    def _ctrl_decommission(self, payload: dict) -> dict:
        """Reap a retired (tombstone) bucket after its image catch-up
        window: detach the node and forget it.  Refuses while the
        tombstone still holds records or was never retired — reaping a
        live bucket would lose data.  Reports whether the site hosts
        any remaining nodes so the caller can retire the whole
        process."""
        if self.role != "bucket":
            raise ValueError("decommission sent to the coordinator")
        shell = self.files.get(payload["name"])
        address = payload["address"]
        bucket = (None if shell is None
                  else shell.local_buckets.get(address))
        if bucket is None:
            raise ValueError(
                f"no bucket {address} to decommission on site "
                f"{self.index}")
        if not bucket.retired:
            raise ValueError(
                f"bucket {address} is not retired; only tombstones "
                "can be decommissioned")
        if bucket.records:
            raise ValueError(
                f"tombstone {address} still holds records")
        node_id = bucket.node_id
        self.network.detach(node_id)
        self.crashed.discard(node_id)
        self._frozen.pop(node_id, None)
        del shell.local_buckets[address]
        return {"empty": not self.network.nodes}

    def _ctrl_fault_set(self, payload: dict) -> dict:
        """Install (or retune) this site's seeded fault model.  The
        seed is salted per site so streams differ across processes but
        stay deterministic per (cluster seed, site); retuning rates on
        a live model preserves its stream, matching the nemesis
        contract on the simulator."""
        seed = payload["seed"]
        if self.faults is None or self._fault_seed != seed:
            salt = self.index + 1 if self.role == "bucket" else 0
            self.faults = FaultModel(seed=seed * 1009 + salt)
            self._fault_seed = seed
        self.faults.loss_rate = payload["loss_rate"]
        self.faults.duplication_rate = payload["duplication_rate"]
        self.faults.corruption_rate = payload["corruption_rate"]
        return {}

    def _ctrl_config(self, payload: dict) -> dict:
        """Adopt a grown cluster map and flush frames parked for the
        newly provisioned sites, in FIFO order per site."""
        self.config.buckets = list(payload["buckets"])
        for index in sorted(self._parked):
            if index >= len(self.config.buckets):
                continue
            for frame in self._parked.pop(index):
                self._peer_queue(("bucket", index)).put_nowait(frame)
        return {}

    def _ctrl_restore(self, node_id: Hashable) -> dict:
        known = node_id in self.network.nodes
        was_crashed = node_id in self.crashed
        self.crashed.discard(node_id)
        for timer in self._frozen.pop(node_id, []):
            if timer.cancelled:
                continue
            # Re-arm due immediately: a timeout that "expired" during
            # the outage fires right after the reboot.
            self._armed.add(timer)
            self._loop.call_later(0, self._fire, timer)
        return {"known": known, "was_crashed": was_crashed}

    def _ctrl_dump(self, name: str) -> dict:
        shell = self.files.get(name)
        buckets = {}
        if shell is not None:
            for address, bucket in shell.local_buckets.items():
                buckets[address] = {
                    "level": bucket.level,
                    "retired": bucket.retired,
                    "merge_target": bucket.merge_target,
                    "pending": bucket.pending,
                    "records": sorted(bucket.records.values(),
                                      key=lambda r: r.rid),
                }
        return {"buckets": buckets}

    def _ctrl_dump_parity(self, name: str) -> dict:
        """Snapshot locally hosted parity buckets: per (group, index),
        the slot table (rank -> payload, rids, lengths) — the raw
        material for a client-side parity-consistency oracle."""
        from repro.sdds.lhstar_rs import ParityBucket

        shell = self.files.get(name)
        slots: dict = {}
        if shell is not None:
            for node in self.network.nodes.values():
                if (isinstance(node, ParityBucket)
                        and node.file is shell):
                    slots[(node.group, node.index)] = {
                        rank: {"payload": slot.payload,
                               "rids": list(slot.rids),
                               "lengths": list(slot.lengths)}
                        for rank, slot in node.slots.items()
                    }
        return {"slots": slots}

    def _ctrl_state(self, name: str) -> dict:
        node = self.network.nodes.get(("coordinator", name))
        if node is None:
            raise ValueError(f"no coordinator for file {name!r}")
        return {"i": node.i, "n": node.n,
                "dead": {addr: list(info)
                         for addr, info in node.dead.items()}}

    # -- connection handling ---------------------------------------------

    async def _read_frames(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        decoder = wire.FrameDecoder()
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    return
                decoder.feed(data)
                for channel, value in decoder.frames():
                    if channel == wire.CHANNEL_DATA:
                        self.deliver(wire.message_from_wire(value))
                    else:
                        self.handle_ctrl(value, writer)
        except (ConnectionResetError, BrokenPipeError):
            return
        except wire.WireError:
            log.exception("undecodable frame; closing connection")
        finally:
            stale = [node for node, w in self.clients.items()
                     if w is writer]
            for node in stale:
                del self.clients[node]

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        await self._read_frames(reader, writer)
        writer.close()

    async def serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        obs_metrics.set_metrics(self.metrics)
        if self.role == "bucket":
            port = self.config.buckets[self.index]
        else:
            port = self.config.coordinator
        server = await asyncio.start_server(
            self._on_connection, self.config.host, port)
        log.info("%s site %s listening on %s:%s", self.role,
                 self.index if self.role == "bucket" else "",
                 self.config.host, port)
        print("READY", flush=True)
        async with server:
            await self._stopping.wait()
        for task in self._tasks:
            task.cancel()


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="LH* live-transport site server")
    parser.add_argument("--role", required=True,
                        choices=("bucket", "coordinator"))
    parser.add_argument("--index", type=int, default=0,
                        help="bucket address this site hosts")
    parser.add_argument("--config", required=True,
                        help="path to the cluster JSON config")
    parser.add_argument("--log-level", default="INFO")
    args = parser.parse_args(argv)
    logging.basicConfig(
        level=args.log_level,
        stream=sys.stderr,
        format=(f"%(asctime)s {args.role}[{args.index}] "
                "%(levelname)s %(name)s: %(message)s"),
    )
    config = ClusterConfig.load(args.config)
    server = SiteServer(args.role, args.index, config)
    try:
        asyncio.run(server.serve())
    except KeyboardInterrupt:
        pass


if __name__ == "__main__":  # pragma: no cover - process entry point
    main()
