"""Bucket and coordinator server processes for the live transport.

``python -m repro.net.serve --role bucket --index K --config cluster.json``
hosts LH* bucket ``K`` (one process per bucket address, for every file
name in the cluster); ``--role coordinator`` hosts the split
coordinators.  Both run the *unmodified* protocol actors from
:mod:`repro.sdds.lhstar` over an asyncio socket loop speaking the
:mod:`repro.net.wire` frame format — the protocol logic cannot drift
between the simulator and the live deployment because it is the same
code.

Each process owns:

* a :class:`SiteNetwork` — the :class:`~repro.net.simulator.Network`
  surface its local nodes see.  ``send`` bills the local
  :class:`~repro.net.stats.NetworkStats` at the declared size exactly
  like the simulator, then routes the frame to the hosting peer;
  ``schedule`` arms real-time asyncio timers with the simulator's
  crash-freeze semantics.
* a control plane (unbilled, ``CHANNEL_CTRL``): node creation, crash
  and restore flags, census, record dumps, shutdown.  Control traffic
  deliberately mirrors the simulator's unbilled *method calls*
  (``Network.crash`` etc.).
* conservation counters (data messages sent / delivered / buffered)
  the client's census sums to detect global quiescence — the live
  equivalent of the simulator's run-to-quiescence event loop.

Crashing a bucket process (``LiveNetwork.crash``) sets a flag at its
hosting site: inbound data for the node is dropped and billed as
``crashed_drops``, owned timers freeze, and ``restore`` re-arms them
— byte-for-byte the accounting of the simulated ``Network.crash``,
with records preserved across the outage.

See ``docs/SERVING.md`` for the topology and wire format.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import logging
import sys
from typing import Any, Callable, Hashable

from repro.errors import UnknownNodeError
from repro.net import wire
from repro.net.simulator import Message, Node, Timer
from repro.net.stats import NetworkStats
from repro.obs import metrics as obs_metrics

log = logging.getLogger("repro.net.serve")

#: Seconds between redials while a peer site is still starting up.
DIAL_RETRY_DELAY = 0.2
#: Give up dialing a peer after this many seconds.
DIAL_TIMEOUT = 30.0


class ClusterConfig:
    """The cluster's address map, shared by every process via JSON."""

    def __init__(self, host: str, coordinator: int,
                 buckets: list[int]) -> None:
        self.host = host
        self.coordinator = coordinator
        self.buckets = list(buckets)

    @classmethod
    def load(cls, path: str) -> "ClusterConfig":
        with open(path, encoding="utf-8") as handle:
            raw = json.load(handle)
        return cls(raw["host"], raw["coordinator"], raw["buckets"])

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"host": self.host,
                       "coordinator": self.coordinator,
                       "buckets": self.buckets}, handle)

    def peer_address(self, key: tuple) -> tuple[str, int]:
        if key[0] == "coordinator":
            return self.host, self.coordinator
        return self.host, self.buckets[key[1]]


def peer_of(node_id: Hashable) -> tuple | None:
    """The hosting-process key of a protocol node id, or ``None``
    for client nodes (which live in the connecting process)."""
    if not isinstance(node_id, tuple) or not node_id:
        return None
    if node_id[0] == "bucket":
        return ("bucket", node_id[2])
    if node_id[0] == "coordinator":
        return ("coordinator",)
    return None


# ---------------------------------------------------------------------------
# shell files: the LHStarFile surface the hosted actors consume
# ---------------------------------------------------------------------------


class _StubBucket:
    """Placeholder for a bucket hosted in another process."""

    records: dict = {}


class _StubBuckets:
    """The coordinator's ``file.buckets`` view in live mode.

    The coordinator only reads it for a load metric on split
    (``len(file.buckets[n].records)``); the real records live in the
    bucket processes, so the metric observes 0 here — a documented
    live-mode deviation that touches metrics only, never protocol."""

    def __getitem__(self, address: int) -> _StubBucket:
        return _StubBucket()

    def get(self, address: int) -> _StubBucket:
        return _StubBucket()


class ShellFile:
    """The slice of :class:`~repro.sdds.lhstar.LHStarFile` a hosted
    actor actually touches, reconstructed from a ``create_*`` control
    message.  Identifier formulas are duplicated *by value* from the
    real file (asserted equal in the test suite)."""

    def __init__(self, server: "SiteServer", name: str,
                 bucket_capacity: int, shrink: bool,
                 split_policy: str, load_factor_threshold: float,
                 merge_threshold: float, retry_policy) -> None:
        self.server = server
        self.network = server.network
        self.name = name
        self.bucket_capacity = bucket_capacity
        self.shrink = shrink
        self.split_policy = split_policy
        self.load_factor_threshold = load_factor_threshold
        self.merge_threshold = merge_threshold
        self.retry_policy = retry_policy
        self.record_count = 0
        #: The locally hosted buckets of this file (at most one per
        #: bucket process); the coordinator sees stubs instead.
        self.local_buckets: dict[int, Any] = {}

    # -- identifiers (same formulas as LHStarFile) -----------------------

    def bucket_id(self, address: int) -> Hashable:
        return ("bucket", self.name, address)

    def client_id(self, index: int) -> Hashable:
        return ("client", self.name, index)

    @property
    def coordinator_id(self) -> Hashable:
        return ("coordinator", self.name)

    # -- bookkeeping hooks (plain LH*: no parity layer) -------------------

    def on_store(self, address, record, old) -> None:
        if old is None:
            self.record_count += 1

    def on_remove(self, address, record) -> None:
        self.record_count -= 1

    def on_move(self, old, new, record) -> None:
        pass

    # -- crash-recovery hooks (plain LH*) ---------------------------------

    def begin_recovery(self, address: int, level: int) -> bool:
        return False

    def finish_recovery(self, address: int) -> None:
        pass

    def recovery_group(self, address: int) -> list[int]:
        return [address]

    def degraded_read_target(self, address: int):
        return None

    def degraded_dead_set(self, address, dead) -> list[int]:
        return [address]

    def retire_bucket(self, address: int) -> None:
        pass


class CoordinatorShellFile(ShellFile):
    """Coordinator-side shell: splits create buckets *remotely*."""

    @property
    def buckets(self) -> _StubBuckets:
        return _StubBuckets()

    def create_bucket(self, address: int, level: int,
                      pending: bool = False) -> None:
        """The live form of the coordinator's split-side bucket
        creation: an (unbilled) control message to the hosting site.
        The data-plane ``split_records`` shipment may still overtake
        it — the site buffers data for a locally owned, not yet
        created node until creation lands."""
        self.server.send_ctrl(("bucket", address), {
            "ctrl": "create_bucket",
            "name": self.name,
            "address": address,
            "level": level,
            "pending": pending,
            "bucket_capacity": self.bucket_capacity,
            "shrink": self.shrink,
            "split_policy": self.split_policy,
            "load_factor_threshold": self.load_factor_threshold,
            "merge_threshold": self.merge_threshold,
            "retry_policy": self.retry_policy,
        })


class BucketShellFile(ShellFile):
    """Bucket-side shell: exposes the hosted bucket for dumps."""

    @property
    def buckets(self) -> dict[int, Any]:
        return self.local_buckets


# ---------------------------------------------------------------------------
# the per-process network
# ---------------------------------------------------------------------------


class SiteNetwork:
    """The ``Network`` surface hosted nodes see inside one process.

    ``send`` bills the local stats at the *declared* size — the same
    accounting point as the simulator — and hands the message to the
    server for socket routing.  ``schedule`` arms wall-clock timers
    with owner-crash freezing."""

    def __init__(self, server: "SiteServer") -> None:
        self.server = server
        self.stats = NetworkStats()
        self.observer: Any | None = None
        self.nodes: dict[Hashable, Node] = {}
        self.now = 0.0

    def attach(self, node: Node) -> Node:
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        node.network = self
        self.nodes[node.node_id] = node
        return node

    def detach(self, node_id: Hashable) -> None:
        node = self.nodes.pop(node_id, None)
        if node is None:
            raise UnknownNodeError(f"unknown node {node_id!r}")
        node.network = None

    def __contains__(self, node_id: Hashable) -> bool:
        return node_id in self.nodes

    def send(self, src, dst, kind, payload=None, size=64,
             hops=0) -> Message:
        payload = payload or {}
        self.stats.record(kind, size)
        if self.observer is not None:
            self.observer.on_send(kind, size)
        self.server.sent += 1
        message = Message(src=src, dst=dst, kind=kind,
                          payload=payload, size=size, hops=hops)
        self.server.route(message)
        return message

    def schedule(self, delay: float, callback: Callable[[], None],
                 owner: Hashable | None = None) -> Timer:
        return self.server.schedule(delay, callback, owner)

    def is_crashed(self, node_id: Hashable) -> bool:
        return node_id in self.server.crashed


# ---------------------------------------------------------------------------
# the server process
# ---------------------------------------------------------------------------


class SiteServer:
    """One cluster process: a bucket site or the coordinator site."""

    def __init__(self, role: str, index: int,
                 config: ClusterConfig) -> None:
        if role not in ("bucket", "coordinator"):
            raise ValueError(f"unknown role {role!r}")
        self.role = role
        self.index = index
        self.config = config
        self.network = SiteNetwork(self)
        self.files: dict[str, ShellFile] = {}
        #: Crashed node ids (delivery-time drops, frozen timers).
        self.crashed: set[Hashable] = set()
        self._frozen: dict[Hashable, list[Timer]] = {}
        #: Data messages buffered for a locally owned node that has
        #: not been created yet (a split shipment overtaking its
        #: control-plane ``create_bucket``).
        self.buffered: dict[Hashable, list[Message]] = {}
        #: Conservation counters for the client's quiescence census.
        self.sent = 0
        self.delivered = 0
        #: Registered client connections: node id -> StreamWriter.
        self.clients: dict[Hashable, asyncio.StreamWriter] = {}
        self._out: dict[tuple, asyncio.Queue] = {}
        self._tasks: list[asyncio.Task] = []
        self._armed: set[Timer] = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stopping: asyncio.Event | None = None
        self.metrics = obs_metrics.MetricsRegistry()

    # -- timers ----------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None],
                 owner: Hashable | None = None) -> Timer:
        if delay < 0:
            raise ValueError("timer delay must be non-negative")
        assert self._loop is not None
        timer = Timer(self._loop.time() + delay, callback, owner=owner)
        self._armed.add(timer)
        self._loop.call_later(delay, self._fire, timer)
        return timer

    def _fire(self, timer: Timer) -> None:
        self._armed.discard(timer)
        if timer.cancelled:
            return
        if timer.owner is not None and timer.owner in self.crashed:
            # The owner is down: freeze; restore() re-arms due now.
            self._frozen.setdefault(timer.owner, []).append(timer)
            return
        timer.fired = True
        try:
            timer.callback()
        except Exception:
            log.exception("timer callback failed")

    def armed_timers(self) -> int:
        return sum(1 for timer in self._armed if not timer.cancelled)

    # -- routing ---------------------------------------------------------

    def route(self, message: Message) -> None:
        """Ship one locally sent data message toward its host."""
        dst = message.dst
        if dst in self.network.nodes or self._locally_owned(dst):
            # Same-process delivery (possible for tombstone revivals);
            # defer a tick to keep handle() non-reentrant.
            assert self._loop is not None
            self._loop.call_soon(self.deliver, message)
            return
        if isinstance(dst, tuple) and dst and dst[0] == "client":
            writer = self.clients.get(dst)
            if writer is None:
                log.error("no registered connection for client %r; "
                          "message %r dropped", dst, message.kind)
                self.network.stats.crashed_drops += 1
                self.delivered += 1  # consumed, keeps census conserved
                return
            writer.write(wire.encode_frame(
                wire.CHANNEL_DATA, wire.message_to_wire(message)))
            return
        peer = peer_of(dst)
        if peer is None or (peer[0] == "bucket"
                            and peer[1] >= len(self.config.buckets)):
            log.error("unroutable destination %r for kind %r", dst,
                      message.kind)
            self.network.stats.crashed_drops += 1
            self.delivered += 1
            return
        self._peer_queue(peer).put_nowait(wire.encode_frame(
            wire.CHANNEL_DATA, wire.message_to_wire(message)))

    def send_ctrl(self, peer: tuple, payload: dict) -> None:
        """Fire-and-forget control message to another site."""
        self._peer_queue(peer).put_nowait(
            wire.encode_frame(wire.CHANNEL_CTRL, payload))

    def _peer_queue(self, peer: tuple) -> asyncio.Queue:
        queue = self._out.get(peer)
        if queue is None:
            queue = self._out[peer] = asyncio.Queue()
            self._tasks.append(asyncio.ensure_future(
                self._peer_writer(peer, queue)))
        return queue

    async def _peer_writer(self, peer: tuple,
                           queue: asyncio.Queue) -> None:
        """One outbound connection per peer process: dial (with
        retries while the peer boots), then stream frames in FIFO
        order — the live transport's per-link TCP ordering."""
        host, port = self.config.peer_address(peer)
        writer = None
        assert self._loop is not None
        deadline = self._loop.time() + DIAL_TIMEOUT
        while writer is None:
            try:
                reader, writer = await asyncio.open_connection(
                    host, port)
            except OSError:
                if self._loop.time() > deadline:
                    log.error("cannot reach peer %r at %s:%s",
                              peer, host, port)
                    return
                await asyncio.sleep(DIAL_RETRY_DELAY)
        # Drain anything the peer writes back (control acks are never
        # requested on this link, but decode errors should be loud).
        self._tasks.append(asyncio.ensure_future(
            self._read_frames(reader, writer)))
        while True:
            data = await queue.get()
            writer.write(data)
            await writer.drain()

    def _locally_owned(self, node_id: Hashable) -> bool:
        """Whether this process is the host of ``node_id`` (even if
        the node has not been created yet)."""
        if not isinstance(node_id, tuple) or not node_id:
            return False
        if self.role == "bucket":
            return (node_id[0] == "bucket" and len(node_id) == 3
                    and node_id[2] == self.index)
        return node_id[0] == "coordinator"

    # -- delivery --------------------------------------------------------

    def deliver(self, message: Message) -> None:
        dst = message.dst
        if dst in self.crashed:
            # The frame crossed the wire and dies at the dead host's
            # door — billed exactly like the simulator.
            self.network.stats.crashed_drops += 1
            if self.network.observer is not None:
                self.network.observer.on_drop(message.kind,
                                              message.size)
            self.delivered += 1
            return
        node = self.network.nodes.get(dst)
        if node is None:
            if self._locally_owned(dst):
                self.buffered.setdefault(dst, []).append(message)
                return
            log.error("message %r for %r reached the wrong site",
                      message.kind, dst)
            self.delivered += 1
            return
        self.delivered += 1
        if self.network.observer is not None:
            self.network.observer.on_deliver(message.kind,
                                             message.size, 0.0)
        try:
            node.handle(message)
        except Exception:
            log.exception("node %r failed handling %r", dst,
                          message.kind)

    # -- control plane ---------------------------------------------------

    def _shell_file(self, payload: dict) -> ShellFile:
        name = payload["name"]
        shell = self.files.get(name)
        if shell is None:
            cls = (BucketShellFile if self.role == "bucket"
                   else CoordinatorShellFile)
            shell = cls(
                self, name,
                bucket_capacity=payload["bucket_capacity"],
                shrink=payload["shrink"],
                split_policy=payload["split_policy"],
                load_factor_threshold=payload[
                    "load_factor_threshold"],
                merge_threshold=payload["merge_threshold"],
                retry_policy=payload["retry_policy"],
            )
            self.files[name] = shell
        return shell

    def handle_ctrl(self, payload: dict,
                    writer: asyncio.StreamWriter) -> None:
        ctrl = payload.get("ctrl")
        token = payload.get("token")
        try:
            reply = self._dispatch_ctrl(ctrl, payload, writer)
        except Exception as exc:
            log.exception("control %r failed", ctrl)
            reply = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        if token is not None:
            reply = dict(reply or {})
            reply.setdefault("ok", True)
            reply["ctrl"] = "ack"
            reply["token"] = token
            writer.write(wire.encode_frame(wire.CHANNEL_CTRL, reply))

    def _dispatch_ctrl(self, ctrl: str, payload: dict,
                       writer: asyncio.StreamWriter) -> dict | None:
        if ctrl == "ping":
            return {"role": self.role, "index": self.index}
        if ctrl == "register_client":
            self.clients[payload["node"]] = writer
            return {}
        if ctrl == "create_bucket":
            return self._ctrl_create_bucket(payload)
        if ctrl == "create_coordinator":
            return self._ctrl_create_coordinator(payload)
        if ctrl == "crash":
            self.crashed.add(payload["node"])
            return {}
        if ctrl == "restore":
            return self._ctrl_restore(payload["node"])
        if ctrl == "census":
            return {
                "sent": self.sent,
                "delivered": self.delivered,
                "buffered": sum(len(q) for q in
                                self.buffered.values()),
                "timers": self.armed_timers(),
                "stats": self.network.stats.snapshot(),
                "metrics": self.metrics.to_dict(),
            }
        if ctrl == "dump":
            return self._ctrl_dump(payload["name"])
        if ctrl == "state":
            return self._ctrl_state(payload["name"])
        if ctrl == "shutdown":
            assert self._stopping is not None
            self._loop.call_soon(self._stopping.set)
            return {}
        raise ValueError(f"unknown control message {ctrl!r}")

    def _ctrl_create_bucket(self, payload: dict) -> dict:
        from repro.sdds.lhstar import LHStarBucket

        if self.role != "bucket":
            raise ValueError("create_bucket sent to the coordinator")
        address = payload["address"]
        if address != self.index:
            raise ValueError(
                f"bucket {address} does not live on site {self.index}"
            )
        shell = self._shell_file(payload)
        existing = shell.local_buckets.get(address)
        if existing is not None:
            if not existing.retired:
                raise ValueError(f"bucket {address} already exists")
            existing.retired = False
            existing.merge_target = None
            existing.level = payload["level"]
            existing.pending = payload["pending"]
            return {"revived": True}
        bucket = LHStarBucket(shell, address, payload["level"],
                              pending=payload["pending"])
        shell.local_buckets[address] = bucket
        self.network.attach(bucket)
        # A split shipment may have overtaken this control message:
        # deliver anything buffered for the new node, in arrival order.
        for message in self.buffered.pop(bucket.node_id, []):
            self.deliver(message)
        return {}

    def _ctrl_create_coordinator(self, payload: dict) -> dict:
        from repro.sdds.lhstar import LHStarCoordinator

        if self.role != "coordinator":
            raise ValueError(
                "create_coordinator sent to a bucket site")
        if payload["split_policy"] != "uncontrolled":
            raise ValueError(
                "live backend v1 supports split_policy='uncontrolled' "
                "only (load-factor splitting needs a global record "
                "count the census does not aggregate)"
            )
        if payload["shrink"]:
            raise ValueError(
                "live backend v1 does not support file shrinking"
            )
        shell = self._shell_file(payload)
        node_id = shell.coordinator_id
        if node_id in self.network.nodes:
            raise ValueError(
                f"coordinator for file {payload['name']!r} exists")
        coordinator = LHStarCoordinator(shell)
        self.network.attach(coordinator)
        for message in self.buffered.pop(node_id, []):
            self.deliver(message)
        return {}

    def _ctrl_restore(self, node_id: Hashable) -> dict:
        was_crashed = node_id in self.crashed
        self.crashed.discard(node_id)
        for timer in self._frozen.pop(node_id, []):
            if timer.cancelled:
                continue
            # Re-arm due immediately: a timeout that "expired" during
            # the outage fires right after the reboot.
            self._armed.add(timer)
            self._loop.call_later(0, self._fire, timer)
        return {"was_crashed": was_crashed}

    def _ctrl_dump(self, name: str) -> dict:
        shell = self.files.get(name)
        buckets = {}
        if shell is not None:
            for address, bucket in shell.local_buckets.items():
                buckets[address] = {
                    "level": bucket.level,
                    "retired": bucket.retired,
                    "pending": bucket.pending,
                    "records": sorted(bucket.records.values(),
                                      key=lambda r: r.rid),
                }
        return {"buckets": buckets}

    def _ctrl_state(self, name: str) -> dict:
        node = self.network.nodes.get(("coordinator", name))
        if node is None:
            raise ValueError(f"no coordinator for file {name!r}")
        return {"i": node.i, "n": node.n,
                "dead": {addr: list(info)
                         for addr, info in node.dead.items()}}

    # -- connection handling ---------------------------------------------

    async def _read_frames(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        decoder = wire.FrameDecoder()
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    return
                decoder.feed(data)
                for channel, value in decoder.frames():
                    if channel == wire.CHANNEL_DATA:
                        self.deliver(wire.message_from_wire(value))
                    else:
                        self.handle_ctrl(value, writer)
        except (ConnectionResetError, BrokenPipeError):
            return
        except wire.WireError:
            log.exception("undecodable frame; closing connection")
        finally:
            stale = [node for node, w in self.clients.items()
                     if w is writer]
            for node in stale:
                del self.clients[node]

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        await self._read_frames(reader, writer)
        writer.close()

    async def serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        obs_metrics.set_metrics(self.metrics)
        if self.role == "bucket":
            port = self.config.buckets[self.index]
        else:
            port = self.config.coordinator
        server = await asyncio.start_server(
            self._on_connection, self.config.host, port)
        log.info("%s site %s listening on %s:%s", self.role,
                 self.index if self.role == "bucket" else "",
                 self.config.host, port)
        print("READY", flush=True)
        async with server:
            await self._stopping.wait()
        for task in self._tasks:
            task.cancel()


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="LH* live-transport site server")
    parser.add_argument("--role", required=True,
                        choices=("bucket", "coordinator"))
    parser.add_argument("--index", type=int, default=0,
                        help="bucket address this site hosts")
    parser.add_argument("--config", required=True,
                        help="path to the cluster JSON config")
    parser.add_argument("--log-level", default="INFO")
    args = parser.parse_args(argv)
    logging.basicConfig(
        level=args.log_level,
        stream=sys.stderr,
        format=(f"%(asctime)s {args.role}[{args.index}] "
                "%(levelname)s %(name)s: %(message)s"),
    )
    config = ClusterConfig.load(args.config)
    server = SiteServer(args.role, args.index, config)
    try:
        asyncio.run(server.serve())
    except KeyboardInterrupt:
        pass


if __name__ == "__main__":  # pragma: no cover - process entry point
    main()
