"""The live transport's deterministic wire codec.

The simulator ships :class:`~repro.net.simulator.Message` objects as
Python references; the live transport (:mod:`repro.net.live`) ships
them between processes, so every payload value needs a byte encoding
both ends compute identically.  This module is that encoding — the
same tagged-value discipline as the simulator's ``_stable_bytes``
(one ASCII tag byte per value, scalars by value, containers
recursively), extended with length prefixes so it can be *decoded*,
and with explicit type tags for the protocol's opaque objects:
records, search plans, site hits, scan matchers, SWP trapdoors and
retry policies.  ``docs/SERVING.md`` documents the format;
``docs/PROTOCOLS.md`` §11 carries the normative message-kind table
rendered from :data:`MESSAGE_KINDS` below (``python -m
repro.net.wire`` regenerates it, and the docs test suite diffs the
two so they cannot drift).

Framing is length-prefixed: a big-endian ``u32`` byte count, then a
version byte (:data:`WIRE_VERSION`), a channel byte
(:data:`CHANNEL_DATA` for protocol messages billed to
:class:`~repro.net.stats.NetworkStats`, :data:`CHANNEL_CTRL` for the
unbilled cluster-management plane), then one encoded value.

Determinism contract: encoding is a pure function of the value —
no memory addresses, hashes seeded per process, or clock reads —
and ``decode(encode(v))`` rebuilds an equal value with dict insertion
order preserved (the simulator's wire checksum is order-sensitive,
so the live transport must deliver payload dicts in sending order).

>>> payload = {"key": 7, "op": 1, "client": ("client", "F", 0)}
>>> decode_value(encode_value(payload)) == payload
True
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.net.simulator import Message

#: Wire format version, first byte of every frame body.  Bump on any
#: incompatible change to tags, framing or the typed-object registry.
WIRE_VERSION = 1

#: Channel byte: a protocol :class:`Message` billed to NetworkStats.
CHANNEL_DATA = 0
#: Channel byte: cluster management (attach, crash, census, shutdown)
#: — never billed, exactly as the simulator's management *method
#: calls* (``Network.crash`` etc.) are not messages.
CHANNEL_CTRL = 1

_LEN = struct.Struct(">I")
_F64 = struct.Struct(">d")

#: Hard ceiling on one frame (64 MiB) — a decoder reading a length
#: beyond it is desynchronised or under attack; fail loudly.
MAX_FRAME = 64 * 1024 * 1024


class WireError(ValueError):
    """Base class for wire codec failures."""


class WireEncodeError(WireError):
    """A value the deterministic codec refuses to encode."""


class WireDecodeError(WireError):
    """Malformed, truncated or wrong-version bytes."""


# ---------------------------------------------------------------------------
# value codec
# ---------------------------------------------------------------------------
#
# One ASCII tag byte per value (mirroring the simulator's
# ``_stable_bytes`` alphabet where the two overlap):
#
#   n             None
#   T / F         True / False
#   i <u8 n> <n bytes>          signed big-endian two's-complement int
#   f <8 bytes>                 IEEE-754 double, big-endian
#   s <u32 n> <n bytes>         UTF-8 string
#   b <u32 n> <n bytes>         bytes
#   l <u32 n> <items>           list
#   t <u32 n> <items>           tuple
#   d <u32 n> <k v pairs>       dict, insertion order preserved
#   S <u32 n> <items>           set (canonical order: sorted encodings)
#   O <u8 type-id> <fields>     registered protocol object


def _encode_into(out: bytearray, value: Any) -> None:
    if value is None:
        out += b"n"
    elif value is True:
        out += b"T"
    elif value is False:
        out += b"F"
    elif isinstance(value, int):
        raw = value.to_bytes((value.bit_length() + 8) // 8, "big",
                             signed=True)
        if len(raw) > 255:
            raise WireEncodeError("integer too large for the wire")
        out += b"i"
        out.append(len(raw))
        out += raw
    elif isinstance(value, float):
        out += b"f" + _F64.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += b"s" + _LEN.pack(len(raw)) + raw
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out += b"b" + _LEN.pack(len(raw)) + raw
    elif isinstance(value, list):
        out += b"l" + _LEN.pack(len(value))
        for item in value:
            _encode_into(out, item)
    elif isinstance(value, tuple):
        out += b"t" + _LEN.pack(len(value))
        for item in value:
            _encode_into(out, item)
    elif isinstance(value, dict):
        out += b"d" + _LEN.pack(len(value))
        for key, item in value.items():
            _encode_into(out, key)
            _encode_into(out, item)
    elif isinstance(value, (set, frozenset)):
        encoded = sorted(encode_value(item) for item in value)
        out += b"S" + _LEN.pack(len(encoded))
        for item in encoded:
            out += item
    else:
        entry = _registry().get(type(value))
        if entry is None:
            raise WireEncodeError(
                f"no wire encoding for {type(value).__name__!r}; "
                "register it in repro.net.wire or ship plain values"
            )
        type_id, pack, _unpack = entry
        out += b"O"
        out.append(type_id)
        _encode_into(out, pack(value))


def encode_value(value: Any) -> bytes:
    """Encode one value to its deterministic wire bytes."""
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


def _decode_from(buf: memoryview, pos: int) -> tuple[Any, int]:
    if pos >= len(buf):
        raise WireDecodeError("truncated value")
    tag = buf[pos]
    pos += 1
    if tag == 0x6E:                     # n
        return None, pos
    if tag == 0x54:                     # T
        return True, pos
    if tag == 0x46:                     # F
        return False, pos
    if tag == 0x69:                     # i
        if pos >= len(buf):
            raise WireDecodeError("truncated int length")
        length = buf[pos]
        pos += 1
        raw = bytes(buf[pos:pos + length])
        if len(raw) != length:
            raise WireDecodeError("truncated int")
        return int.from_bytes(raw, "big", signed=True), pos + length
    if tag == 0x66:                     # f
        if pos + 8 > len(buf):
            raise WireDecodeError("truncated float")
        return _F64.unpack_from(buf, pos)[0], pos + 8
    if tag in (0x73, 0x62):             # s / b
        if pos + 4 > len(buf):
            raise WireDecodeError("truncated length")
        (length,) = _LEN.unpack_from(buf, pos)
        pos += 4
        raw = bytes(buf[pos:pos + length])
        if len(raw) != length:
            raise WireDecodeError("truncated string/bytes body")
        if tag == 0x62:
            return raw, pos + length
        try:
            return raw.decode("utf-8"), pos + length
        except UnicodeDecodeError as error:
            raise WireDecodeError(
                f"invalid utf-8 in string: {error}"
            ) from error
    if tag in (0x6C, 0x74, 0x53):       # l / t / S
        if pos + 4 > len(buf):
            raise WireDecodeError("truncated length")
        (count,) = _LEN.unpack_from(buf, pos)
        pos += 4
        items = []
        for _ in range(count):
            item, pos = _decode_from(buf, pos)
            items.append(item)
        if tag == 0x74:
            return tuple(items), pos
        if tag == 0x53:
            try:
                return set(items), pos
            except TypeError as error:
                raise WireDecodeError(
                    f"unhashable set member: {error}"
                ) from error
        return items, pos
    if tag == 0x64:                     # d
        if pos + 4 > len(buf):
            raise WireDecodeError("truncated length")
        (count,) = _LEN.unpack_from(buf, pos)
        pos += 4
        result: dict[Any, Any] = {}
        for _ in range(count):
            key, pos = _decode_from(buf, pos)
            item, pos = _decode_from(buf, pos)
            try:
                result[key] = item
            except TypeError as error:
                raise WireDecodeError(
                    f"unhashable dict key: {error}"
                ) from error
        return result, pos
    if tag == 0x4F:                     # O
        if pos >= len(buf):
            raise WireDecodeError("truncated type id")
        type_id = buf[pos]
        pos += 1
        unpack = _decoders().get(type_id)
        if unpack is None:
            raise WireDecodeError(f"unknown wire type id {type_id}")
        fields, pos = _decode_from(buf, pos)
        try:
            return unpack(fields), pos
        except WireDecodeError:
            raise
        except Exception as error:
            # Corrupted fields must surface as a decode error, not as
            # whatever the type's constructor happens to throw.
            raise WireDecodeError(
                f"malformed fields for wire type id {type_id}: "
                f"{error}"
            ) from error
    raise WireDecodeError(f"unknown wire tag {tag:#x}")


def decode_value(data: bytes | memoryview) -> Any:
    """Decode one value; rejects trailing garbage."""
    value, pos = _decode_from(memoryview(data), 0)
    if pos != len(data):
        raise WireDecodeError(
            f"{len(data) - pos} trailing bytes after value"
        )
    return value


# ---------------------------------------------------------------------------
# typed protocol objects
# ---------------------------------------------------------------------------
#
# Each entry collapses an opaque payload object to a tuple of plain
# wire values and rebuilds an equivalent object on the far side.
# Matchers are shipped by *parameters*: the refactored scheme hands
# them a wire-encodable ``IndexKeyCodec`` and a parameter-only
# ``BatchHitReporter``, so (plan(s), codec, flags) reconstructs a
# matcher whose replies are byte-identical to the sender's.

_TYPES: dict[type, tuple[int, Callable[[Any], Any],
                         Callable[[Any], Any]]] | None = None
_BY_ID: dict[int, Callable[[Any], Any]] | None = None


def _batched(matcher: Any) -> bool:
    """Whether a matcher still has its batched fast path enabled
    (``fast_path=False`` construction pins ``match_bucket = None``)."""
    return getattr(matcher, "match_bucket", None) is not None


def _build_registry() -> None:
    global _TYPES, _BY_ID
    from repro.core.compressed_index import (
        CompressedScanMatcher,
        MultiCompressedScanMatcher,
    )
    from repro.core.scheme import BatchHitReporter, _BatchHit
    from repro.core.search import (
        IndexKeyCodec,
        MultiPlanScanMatcher,
        PlanScanMatcher,
        SearchPlan,
        SiteHit,
    )
    from repro.core.wordsearch import (
        MultiWordScanMatcher,
        WordScanMatcher,
    )
    from repro.crypto.swp import Trapdoor
    from repro.net.faults import RetryPolicy
    from repro.net.stats import NetworkStats
    from repro.sdds.lhstar import RidScanMatcher
    from repro.sdds.records import Record

    def pack_plan_matcher(m: PlanScanMatcher) -> tuple:
        if not isinstance(m.decode, IndexKeyCodec):
            raise WireEncodeError(
                "PlanScanMatcher.decode must be an IndexKeyCodec to "
                "cross a process boundary (got "
                f"{type(m.decode).__name__!r})"
            )
        return (m.plan, m.decode, _batched(m))

    def pack_multi_matcher(m: MultiPlanScanMatcher) -> tuple:
        if not isinstance(m.decode, IndexKeyCodec):
            raise WireEncodeError(
                "MultiPlanScanMatcher.decode must be an IndexKeyCodec "
                "to cross a process boundary"
            )
        if not isinstance(m.report, BatchHitReporter):
            raise WireEncodeError(
                "MultiPlanScanMatcher.report must be a "
                "BatchHitReporter to cross a process boundary"
            )
        return (list(m.plans), m.decode, m.report.tagged, _batched(m))

    def pack_stats(s: NetworkStats) -> tuple:
        return (
            s.messages, s.bytes, dict(s.by_kind),
            dict(s.bytes_by_kind), s.dropped, s.duplicated, s.retries,
            s.crashed_drops, s.partitioned_drops, s.corrupted,
        )

    def unpack_stats(fields: tuple) -> NetworkStats:
        from collections import Counter

        (messages, nbytes, by_kind, bytes_by_kind, dropped,
         duplicated, retries, crashed, partitioned, corrupted) = fields
        return NetworkStats(
            messages=messages, bytes=nbytes,
            by_kind=Counter(by_kind),
            bytes_by_kind=Counter(bytes_by_kind),
            dropped=dropped, duplicated=duplicated, retries=retries,
            crashed_drops=crashed, partitioned_drops=partitioned,
            corrupted=corrupted,
        )

    table: list[tuple[int, type, Callable, Callable]] = [
        (1, Record,
         lambda r: (r.rid, r.content),
         lambda f: Record(rid=f[0], content=f[1])),
        (2, SiteHit,
         lambda h: (h.rid, h.group, h.site, h.positions),
         lambda f: SiteHit(rid=f[0], group=f[1], site=f[2],
                           positions=f[3])),
        (3, IndexKeyCodec,
         lambda c: (c.site_bits, c.group_bits),
         lambda f: IndexKeyCodec(site_bits=f[0], group_bits=f[1])),
        (4, SearchPlan,
         lambda p: (p.pattern, p.needles, p.piece_width, p.sites,
                    p.group_count, p.alignments, p.required_groups),
         lambda f: SearchPlan(pattern=f[0], needles=f[1],
                              piece_width=f[2], sites=f[3],
                              group_count=f[4], alignments=f[5],
                              required_groups=f[6])),
        (5, PlanScanMatcher,
         pack_plan_matcher,
         lambda f: PlanScanMatcher(f[0], f[1], batched=f[2])),
        (6, BatchHitReporter,
         lambda r: (r.tagged,),
         lambda f: BatchHitReporter(tagged=f[0])),
        (7, MultiPlanScanMatcher,
         pack_multi_matcher,
         lambda f: MultiPlanScanMatcher(
             f[0], f[1], BatchHitReporter(tagged=f[2]), batched=f[3])),
        (8, _BatchHit,
         lambda h: (h.index, h.hit, h.tagged),
         lambda f: _BatchHit(index=f[0], hit=f[1], tagged=f[2])),
        (9, Trapdoor,
         lambda t: (t.pre_encrypted, t.word_key),
         lambda f: Trapdoor(pre_encrypted=f[0], word_key=f[1])),
        (10, WordScanMatcher,
         lambda m: (m.trapdoor, m.fast_path),
         lambda f: WordScanMatcher(f[0], fast_path=f[1])),
        (11, CompressedScanMatcher,
         lambda m: (m.needles, _batched(m)),
         lambda f: CompressedScanMatcher(f[0], batched=f[1])),
        (12, RetryPolicy,
         lambda p: (p.timeout, p.backoff, p.max_retries, p.jitter,
                    p.seed),
         lambda f: RetryPolicy(timeout=f[0], backoff=f[1],
                               max_retries=f[2], jitter=f[3],
                               seed=f[4])),
        (13, NetworkStats, pack_stats, unpack_stats),
        (14, RidScanMatcher,
         lambda m: (),
         lambda f: RidScanMatcher()),
        (15, MultiWordScanMatcher,
         lambda m: (list(m.trapdoors), m.fast_path),
         lambda f: MultiWordScanMatcher(tuple(f[0]), fast_path=f[1])),
        (16, MultiCompressedScanMatcher,
         lambda m: (list(m.needle_groups), _batched(m)),
         lambda f: MultiCompressedScanMatcher(
             tuple(tuple(group) for group in f[0]), batched=f[1])),
    ]
    _TYPES = {cls: (type_id, pack, unpack)
              for type_id, cls, pack, unpack in table}
    _BY_ID = {type_id: unpack for type_id, _cls, _pack, unpack in table}


def _registry() -> dict[type, tuple[int, Callable, Callable]]:
    if _TYPES is None:
        _build_registry()
    assert _TYPES is not None
    return _TYPES


def _decoders() -> dict[int, Callable[[Any], Any]]:
    if _BY_ID is None:
        _build_registry()
    assert _BY_ID is not None
    return _BY_ID


# ---------------------------------------------------------------------------
# message + frame codec
# ---------------------------------------------------------------------------


def message_to_wire(message: Message) -> tuple:
    """The DATA-frame value of one protocol message (a 7-tuple;
    local-only timing fields are deliberately not shipped)."""
    return (
        message.src, message.dst, message.kind, message.payload,
        message.size, message.hops, message.checksum,
    )


def message_from_wire(fields: Any) -> Message:
    if not isinstance(fields, tuple) or len(fields) != 7:
        raise WireDecodeError("malformed message tuple")
    src, dst, kind, payload, size, hops, checksum = fields
    return Message(src=src, dst=dst, kind=kind, payload=payload,
                   size=size, hops=hops, checksum=checksum)


def encode_message(message: Message) -> bytes:
    """Encode one protocol message as a DATA frame body value."""
    return encode_value(message_to_wire(message))


def decode_message(data: bytes | memoryview) -> Message:
    return message_from_wire(decode_value(data))


def encode_frame(channel: int, value: Any) -> bytes:
    """One wire frame: u32 length | version | channel | value."""
    if channel not in (CHANNEL_DATA, CHANNEL_CTRL):
        raise WireEncodeError(f"unknown channel {channel}")
    body = bytes([WIRE_VERSION, channel]) + encode_value(value)
    if len(body) > MAX_FRAME:
        raise WireEncodeError("frame exceeds MAX_FRAME")
    return _LEN.pack(len(body)) + body


def decode_frame_body(body: bytes | memoryview) -> tuple[int, Any]:
    """Decode one frame body (after the length prefix is stripped)."""
    body = memoryview(body)
    if len(body) < 2:
        raise WireDecodeError("frame body shorter than its header")
    if body[0] != WIRE_VERSION:
        raise WireDecodeError(
            f"wire version {body[0]} != {WIRE_VERSION}"
        )
    channel = body[1]
    if channel not in (CHANNEL_DATA, CHANNEL_CTRL):
        raise WireDecodeError(f"unknown channel byte {channel}")
    return channel, decode_value(body[2:])


class FrameDecoder:
    """Incremental reassembly of frames from a byte stream.

    Feed it socket reads; iterate :meth:`frames` for every complete
    ``(channel, value)`` pair.  Partial frames stay buffered.

    >>> decoder = FrameDecoder()
    >>> frame = encode_frame(CHANNEL_CTRL, {"ctrl": "ping"})
    >>> decoder.feed(frame[:5]); decoder.feed(frame[5:])
    >>> list(decoder.frames())
    [(1, {'ctrl': 'ping'})]
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        self._buffer += data

    def frames(self) -> Iterator[tuple[int, Any]]:
        while True:
            if len(self._buffer) < 4:
                return
            (length,) = _LEN.unpack_from(self._buffer, 0)
            if length > MAX_FRAME:
                raise WireDecodeError(
                    f"frame length {length} exceeds MAX_FRAME"
                )
            if len(self._buffer) < 4 + length:
                return
            body = memoryview(self._buffer)[4:4 + length]
            result = decode_frame_body(body)
            del body
            del self._buffer[:4 + length]
            yield result


# ---------------------------------------------------------------------------
# the normative message-kind registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KindSpec:
    """One row of the protocol's message-kind table."""

    kind: str
    sender: str
    receiver: str
    payload: tuple[str, ...]
    billed: str


#: Every message kind either transport may carry, with who sends it,
#: its payload fields and the size the sender declares (and is billed
#: for) — ``H`` abbreviates ``HEADER_SIZE`` (32) and ``R(r)`` a
#: record's ``wire_size`` (16 + len(content)).  ``docs/PROTOCOLS.md``
#: §11 is rendered from this tuple; ``tests/net/test_wire.py``
#: asserts it matches the kinds the SDDS sources actually send.
MESSAGE_KINDS: tuple[KindSpec, ...] = (
    KindSpec("insert", "client", "bucket (forwarded ≤2 hops)",
             ("key", "op", "client", "content"),
             "H + 16 + len(content)"),
    KindSpec("lookup", "client", "bucket (forwarded ≤2 hops)",
             ("key", "op", "client"), "H"),
    KindSpec("delete", "client", "bucket (forwarded ≤2 hops)",
             ("key", "op", "client"), "H"),
    KindSpec("reply", "bucket | parity", "client",
             ("op", "ok", "content? | created? | error?, error_kind?"),
             "H (+ R(record) on a lookup hit)"),
    KindSpec("iam", "bucket", "client", ("address", "level"), "H"),
    KindSpec("scan", "client | bucket (forward)", "bucket",
             ("op", "client", "matcher", "level"),
             "query size (SearchPlan.request_size / trapdoor bytes)"),
    KindSpec("scan_reply", "bucket", "client",
             ("op", "address", "level", "hits", "forwarded"),
             "H + Σ hit wire_size"),
    KindSpec("overflow", "bucket", "coordinator",
             ("address", "delta"), "H"),
    KindSpec("underflow", "bucket", "coordinator", ("address",), "H"),
    KindSpec("load", "bucket", "coordinator",
             ("address", "delta"), "H"),
    KindSpec("split", "coordinator", "bucket",
             ("new_address", "new_level"), "H"),
    KindSpec("split_records", "bucket", "bucket",
             ("records",), "H + Σ R(record)"),
    KindSpec("merge", "coordinator", "bucket",
             ("target", "level"), "H"),
    KindSpec("merge_records", "bucket", "bucket",
             ("records", "level"), "H + Σ R(record)"),
    KindSpec("leave", "coordinator", "bucket", ("address",), "H"),
    KindSpec("probe", "coordinator", "bucket", ("address",), "H"),
    KindSpec("probe_ack", "bucket", "coordinator", ("address",), "H"),
    KindSpec("suspect", "client | parity", "coordinator",
             ("address", "client"), "H"),
    KindSpec("await_recovery", "client", "coordinator",
             ("address", "client"), "H"),
    KindSpec("bucket_down", "coordinator", "subscriber",
             ("address", "group_dead"), "H"),
    KindSpec("bucket_up", "coordinator", "subscriber",
             ("address",), "H"),
    KindSpec("bucket_recovered", "coordinator", "subscriber",
             ("address",), "H"),
    KindSpec("recover", "coordinator", "parity",
             ("address", "dead"), "H"),
    KindSpec("recover_install", "parity | bucket (leave drain)",
             "bucket (spare)",
             ("records",), "H + Σ R(record)"),
    KindSpec("recover_done", "bucket", "coordinator",
             ("address",), "H"),
    KindSpec("group_fetch", "parity", "bucket",
             ("gather", "offset", "entries"), "H + 8·|entries|"),
    KindSpec("group_data", "bucket", "parity",
             ("gather", "offset", "entries"),
             "H + Σ (8 + len(content))"),
    KindSpec("parity_fetch", "parity", "parity",
             ("gather", "ranks"), "H + 8·|ranks|"),
    KindSpec("parity_data", "parity", "parity",
             ("gather", "index", "payloads"),
             "H + Σ (8 + len(payload))"),
    KindSpec("parity_delta", "bucket", "parity",
             ("rank", "offset", "rid", "delta", "length"),
             "H + len(delta)"),
    KindSpec("degraded_lookup", "client", "parity",
             ("op", "client", "key", "address", "dead"), "H"),
    KindSpec("degraded_scan", "client", "parity",
             ("op", "client", "matcher", "address", "level", "dead"),
             "query size (as scan)"),
)

KNOWN_KINDS: frozenset[str] = frozenset(
    spec.kind for spec in MESSAGE_KINDS
)


def protocol_kinds_in_source() -> set[str]:
    """Every message kind the SDDS sources actually pass to ``send``.

    Walks the ASTs of :mod:`repro.sdds.lhstar` and
    :mod:`repro.sdds.lhstar_rs` for ``send`` calls with a literal kind
    argument (2nd positional on ``Node.send``-style calls, 3rd on
    ``network.send``), plus ``start_keyed`` calls — the keyed kinds
    (insert/lookup/delete) reach ``send`` through a variable.  The
    docs test asserts this equals :data:`KNOWN_KINDS`, so the table
    cannot drift from the code.
    """
    import ast
    import pathlib

    import repro.sdds.lhstar
    import repro.sdds.lhstar_rs

    kinds: set[str] = set()
    for module in (repro.sdds.lhstar, repro.sdds.lhstar_rs):
        tree = ast.parse(
            pathlib.Path(module.__file__).read_text(encoding="utf-8")
        )
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("send", "start_keyed")):
                continue
            if node.func.attr == "start_keyed":
                index = 0
            else:
                target = node.func.value
                via_network = (isinstance(target, ast.Attribute)
                               and target.attr == "network")
                index = 2 if via_network else 1
            if len(node.args) <= index:
                continue
            arg = node.args[index]
            if isinstance(arg, ast.Constant) and isinstance(
                    arg.value, str):
                kinds.add(arg.value)
    return kinds


def kind_table_markdown() -> str:
    """Render :data:`MESSAGE_KINDS` as the §11 markdown table."""
    lines = [
        "| Kind | Sender | Receiver | Payload fields | Billed size |",
        "| --- | --- | --- | --- | --- |",
    ]
    for spec in MESSAGE_KINDS:
        fields = ", ".join(f"`{name}`" for name in spec.payload)
        lines.append(
            f"| `{spec.kind}` | {spec.sender} | {spec.receiver} "
            f"| {fields} | {spec.billed} |"
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI shim
    print(kind_table_markdown())


if __name__ == "__main__":  # pragma: no cover
    main()
