"""Deterministic discrete-event network simulator.

The paper evaluates an SDDS running on a multicomputer.  We do not have
a multicomputer; per DESIGN.md the faithful substitute is a simulator
that accounts for the quantities SDDS papers actually argue about —
message counts, bytes on the wire, forwarding hops and protocol rounds
— under a simple latency model (fixed per-message cost plus size over
bandwidth).

* :class:`repro.net.simulator.Network` — the event loop.
* :class:`repro.net.simulator.Node` — base class for protocol actors
  (LH* buckets, the split coordinator, clients, dispersal sites).
* :class:`repro.net.simulator.Message` — a timestamped, sized message.
* :class:`repro.net.stats.NetworkStats` — counters with per-kind
  breakdowns, reset/snapshot support for benchmarking.
"""

from repro.net.faults import (
    RELIABLE_KINDS,
    CrashFaultModel,
    FaultModel,
    RetryExhaustedError,
    RetryPolicy,
    UnreliableNetwork,
)
from repro.net.simulator import (
    JitterLatencyModel,
    LatencyModel,
    Message,
    Network,
    Node,
    Timer,
    wire_checksum,
)
from repro.net.stats import NetworkStats

__all__ = [
    "Network",
    "UnreliableNetwork",
    "Node",
    "Message",
    "Timer",
    "LatencyModel",
    "JitterLatencyModel",
    "NetworkStats",
    "FaultModel",
    "CrashFaultModel",
    "RetryPolicy",
    "RetryExhaustedError",
    "RELIABLE_KINDS",
    "wire_checksum",
]
