"""Message/byte accounting for the simulated network."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class NetworkStats:
    """Running totals for a :class:`~repro.net.simulator.Network`.

    The counters are the currency of SDDS cost analysis: the LH* paper
    argues lookups cost "one message in the usual case, at most three",
    and the encrypted-search scheme multiplies message counts by the
    number of chunkings and dispersal sites.  Benches snapshot these
    counters around an operation to report its exact cost.
    """

    messages: int = 0
    bytes: int = 0
    by_kind: Counter = field(default_factory=Counter)
    bytes_by_kind: Counter = field(default_factory=Counter)
    #: Messages the fault model dropped (sent — and charged above —
    #: but never delivered).
    dropped: int = 0
    #: Extra copies the fault model injected (each also counted in
    #: ``messages``/``bytes``: the copy hit the wire too).
    duplicated: int = 0
    #: Client retransmissions after a timeout (each retransmitted
    #: message is also counted in ``messages``/``bytes``).
    retries: int = 0
    #: Messages that reached a crashed (or meanwhile detached) node and
    #: were dropped at delivery time.  Charged in ``messages``/``bytes``
    #: like any sent message: the datagram crossed the wire and died at
    #: the dead host's door.
    crashed_drops: int = 0
    #: Messages lost to a network partition: the link between source
    #: and destination was severed at the instant the message would
    #: have arrived.  Charged in ``messages``/``bytes`` like any sent
    #: message.
    partitioned_drops: int = 0
    #: Messages whose payload was corrupted in flight and discarded by
    #: the receiver's wire-checksum verification.  Charged in
    #: ``messages``/``bytes``; the sender's timeout/retry path pays
    #: for the redelivery.
    corrupted: int = 0

    def record(self, kind: str, size: int) -> None:
        self.messages += 1
        self.bytes += size
        self.by_kind[kind] += 1
        self.bytes_by_kind[kind] += size

    def snapshot(self) -> "NetworkStats":
        """An independent copy of the current totals."""
        return NetworkStats(
            messages=self.messages,
            bytes=self.bytes,
            by_kind=Counter(self.by_kind),
            bytes_by_kind=Counter(self.bytes_by_kind),
            dropped=self.dropped,
            duplicated=self.duplicated,
            retries=self.retries,
            crashed_drops=self.crashed_drops,
            partitioned_drops=self.partitioned_drops,
            corrupted=self.corrupted,
        )

    def diff(self, older: "NetworkStats") -> "NetworkStats":
        """Totals accumulated since ``older`` was snapshotted.

        The canonical way to cost one operation — snapshot, run,
        diff — used by every search entry point, the obs tracer's
        spans and the benches, instead of subtracting counter fields
        by hand (which silently missed ``dropped``/``duplicated``/
        ``retries`` whenever a new counter was added):

        >>> stats = NetworkStats()
        >>> before = stats.snapshot()
        >>> stats.record("lookup", 64); stats.record("reply", 96)
        >>> delta = stats.diff(before)
        >>> delta.messages, delta.bytes, dict(delta.by_kind)
        (2, 160, {'lookup': 1, 'reply': 1})
        """
        return NetworkStats(
            messages=self.messages - older.messages,
            bytes=self.bytes - older.bytes,
            by_kind=self.by_kind - older.by_kind,
            bytes_by_kind=self.bytes_by_kind - older.bytes_by_kind,
            dropped=self.dropped - older.dropped,
            duplicated=self.duplicated - older.duplicated,
            retries=self.retries - older.retries,
            crashed_drops=self.crashed_drops - older.crashed_drops,
            partitioned_drops=(
                self.partitioned_drops - older.partitioned_drops
            ),
            corrupted=self.corrupted - older.corrupted,
        )

    def delta(self, earlier: "NetworkStats") -> "NetworkStats":
        """Backward-compatible alias of :meth:`diff`."""
        return self.diff(earlier)

    def reset(self) -> None:
        self.messages = 0
        self.bytes = 0
        self.by_kind.clear()
        self.bytes_by_kind.clear()
        self.dropped = 0
        self.duplicated = 0
        self.retries = 0
        self.crashed_drops = 0
        self.partitioned_drops = 0
        self.corrupted = 0
