"""Fault injection and recovery policy for the simulated network.

The paper leans on LH*/LH*_RS for "high availability" over many
storage sites (§5), but a simulator that delivers every message
reliably never exercises any of the SDDS protocol's resilience
machinery.  This module supplies the missing adversity:

* :class:`FaultModel` — seeded, deterministic message loss and
  duplication, plugged into :class:`~repro.net.simulator.Network`.
  Structural server-to-server messages (bucket splits, record
  shipments, parity deltas) are *reliable by default*: they model TCP
  transfers whose retransmission happens below our abstraction, while
  the client path (keyed operations, scans, replies, IAMs) is the
  lossy datagram traffic the LH* client protocol must survive.
* :class:`RetryPolicy` — per-operation timeout, exponential backoff
  and a retry budget for :class:`~repro.sdds.lhstar.LHStarClient`.
* :class:`UnreliableNetwork` — convenience ``Network`` subclass wiring
  a fault model in.
* :class:`RetryExhaustedError` — raised by the synchronous facades
  when an operation's retry budget is spent without an answer.

Determinism: the fault model draws from its own ``random.Random``
seeded at construction, independent of any latency-model randomness,
so a given (seed, workload) pair always drops and duplicates exactly
the same messages.  With both rates at zero no behaviour changes at
all — message counts and the simulated clock stay byte-identical to a
plain reliable :class:`~repro.net.simulator.Network`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.net.simulator import LatencyModel, Network

#: Message kinds exempt from injected faults by default: structural
#: server-to-server transfers whose loss would violate assumptions the
#: LH* papers make of the underlying transport (record shipments are
#: TCP transfers, the coordinator is reliable).  The client datagram
#: path — keyed ops, scans, replies, IAMs — is what gets lossy.
RELIABLE_KINDS = frozenset({
    "split",
    "split_records",
    "merge",
    "merge_records",
    "overflow",
    "underflow",
    "parity_delta",
})


class RetryExhaustedError(RuntimeError):
    """An operation's retry budget ran out without a delivered answer."""


class FaultModel:
    """Seeded loss/duplication decisions for individual messages.

    ``loss_rate`` and ``duplication_rate`` are independent per-message
    probabilities in [0, 1].  A dropped message is charged to the
    sender (it went onto the wire) but never delivered; a duplicated
    message is delivered twice, the copy arriving after the original
    (pairwise FIFO is preserved).  Kinds in ``reliable_kinds`` are
    never dropped or duplicated.
    """

    def __init__(
        self,
        seed: int = 0,
        loss_rate: float = 0.0,
        duplication_rate: float = 0.0,
        reliable_kinds: frozenset[str] | None = None,
    ) -> None:
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError("loss rate must lie in [0, 1]")
        if not 0.0 <= duplication_rate <= 1.0:
            raise ValueError("duplication rate must lie in [0, 1]")
        self.seed = seed
        self.loss_rate = loss_rate
        self.duplication_rate = duplication_rate
        self.reliable_kinds = (
            RELIABLE_KINDS if reliable_kinds is None
            else frozenset(reliable_kinds)
        )
        self._rng = random.Random(seed)

    def applies(self, kind: str) -> bool:
        """Whether messages of ``kind`` are subject to faults."""
        return kind not in self.reliable_kinds

    def drops(self) -> bool:
        """Decide the fate of the next eligible message."""
        return self.loss_rate > 0 and self._rng.random() < self.loss_rate

    def duplicates(self) -> bool:
        """Decide duplication for the next delivered eligible message."""
        return (
            self.duplication_rate > 0
            and self._rng.random() < self.duplication_rate
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultModel(seed={self.seed}, loss_rate={self.loss_rate}, "
            f"duplication_rate={self.duplication_rate})"
        )


class UnreliableNetwork(Network):
    """A :class:`Network` with a seeded :class:`FaultModel` attached.

    >>> net = UnreliableNetwork(seed=7, loss_rate=0.05,
    ...                         duplication_rate=0.01)
    >>> net.faults.loss_rate
    0.05
    """

    def __init__(
        self,
        seed: int = 0,
        loss_rate: float = 0.0,
        duplication_rate: float = 0.0,
        latency: LatencyModel | None = None,
        reliable_kinds: frozenset[str] | None = None,
    ) -> None:
        super().__init__(
            latency=latency,
            faults=FaultModel(
                seed=seed,
                loss_rate=loss_rate,
                duplication_rate=duplication_rate,
                reliable_kinds=reliable_kinds,
            ),
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retry knobs for client-driven operations.

    The first (re)transmission fires ``timeout`` simulated seconds
    after the original send; each subsequent one waits ``backoff``
    times longer.  After ``max_retries`` unanswered retransmissions
    the operation fails with :class:`RetryExhaustedError`.

    The default timeout is generous relative to the simulated LAN
    round-trip (sub-millisecond, at most a few tens of milliseconds
    under jitter), so on a reliable network timers are always
    cancelled before firing and the policy is free.
    """

    timeout: float = 0.25
    backoff: float = 2.0
    max_retries: int = 8

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")

    def delay(self, attempt: int) -> float:
        """Wait before retransmission number ``attempt`` (1-based)."""
        return self.timeout * self.backoff ** attempt
