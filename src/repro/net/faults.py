"""Fault injection and recovery policy for the simulated network.

The paper leans on LH*/LH*_RS for "high availability" over many
storage sites (§5), but a simulator that delivers every message
reliably never exercises any of the SDDS protocol's resilience
machinery.  This module supplies the missing adversity:

* :class:`FaultModel` — seeded, deterministic message loss and
  duplication, plugged into :class:`~repro.net.simulator.Network`.
  Structural server-to-server messages (bucket splits, record
  shipments, parity deltas) are *reliable by default*: they model TCP
  transfers whose retransmission happens below our abstraction, while
  the client path (keyed operations, scans, replies, IAMs) is the
  lossy datagram traffic the LH* client protocol must survive.
* :class:`RetryPolicy` — per-operation timeout, exponential backoff
  and a retry budget for :class:`~repro.sdds.lhstar.LHStarClient`.
* :class:`UnreliableNetwork` — convenience ``Network`` subclass wiring
  a fault model in.
* :class:`RetryExhaustedError` — raised by the synchronous facades
  when an operation's retry budget is spent without an answer.
* :class:`CrashFaultModel` — a seeded MTTF/MTTR schedule of node
  crash/restore events, applied lazily by ``Network.run`` as the
  simulated clock advances (never ahead of the traffic), composing
  with :class:`FaultModel` message faults.

Determinism: the fault model draws from its own ``random.Random``
seeded at construction, independent of any latency-model randomness,
so a given (seed, workload) pair always drops and duplicates exactly
the same messages.  With both rates at zero no behaviour changes at
all — message counts and the simulated clock stay byte-identical to a
plain reliable :class:`~repro.net.simulator.Network`.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable

from repro.errors import SDDSError, UnknownNodeError
from repro.net.simulator import LatencyModel, Network

#: Message kinds exempt from injected faults by default: structural
#: server-to-server transfers whose loss would violate assumptions the
#: LH* papers make of the underlying transport (record shipments are
#: TCP transfers, the coordinator is reliable).  The client datagram
#: path — keyed ops, scans, replies, IAMs — is what gets lossy.
RELIABLE_KINDS = frozenset({
    "split",
    "split_records",
    "merge",
    "merge_records",
    "overflow",
    "underflow",
    "load",
    "leave",
    "parity_delta",
    # Crash-fault protocol traffic (detection, recovery, degraded
    # reads): server-to-server / client-to-coordinator control flows
    # the availability layer treats as reliable transfers.  Crashed
    # destinations still eat them — reliability here only exempts them
    # from *message* faults, not from *node* faults.
    "suspect",
    "probe",
    "probe_ack",
    "await_recovery",
    "bucket_down",
    "bucket_up",
    "bucket_recovered",
    "recover",
    "group_fetch",
    "group_data",
    "parity_fetch",
    "parity_data",
    "recover_install",
    "recover_done",
    "degraded_lookup",
    "degraded_scan",
})


class RetryExhaustedError(SDDSError, RuntimeError):
    """An operation's retry budget ran out without a delivered answer.

    Part of the :class:`repro.errors.ReproError` family; the
    ``RuntimeError`` base is kept for callers that predate it.
    """


class FaultModel:
    """Seeded loss/duplication decisions for individual messages.

    ``loss_rate`` and ``duplication_rate`` are independent per-message
    probabilities in [0, 1].  A dropped message is charged to the
    sender (it went onto the wire) but never delivered; a duplicated
    message is delivered twice, the copy arriving after the original
    (pairwise FIFO is preserved).  Kinds in ``reliable_kinds`` are
    never dropped or duplicated.
    """

    def __init__(
        self,
        seed: int = 0,
        loss_rate: float = 0.0,
        duplication_rate: float = 0.0,
        corruption_rate: float = 0.0,
        reliable_kinds: frozenset[str] | None = None,
    ) -> None:
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError("loss rate must lie in [0, 1]")
        if not 0.0 <= duplication_rate <= 1.0:
            raise ValueError("duplication rate must lie in [0, 1]")
        if not 0.0 <= corruption_rate <= 1.0:
            raise ValueError("corruption rate must lie in [0, 1]")
        self.seed = seed
        self.loss_rate = loss_rate
        self.duplication_rate = duplication_rate
        self.corruption_rate = corruption_rate
        self.reliable_kinds = (
            RELIABLE_KINDS if reliable_kinds is None
            else frozenset(reliable_kinds)
        )
        self._rng = random.Random(seed)

    def applies(self, kind: str) -> bool:
        """Whether messages of ``kind`` are subject to faults."""
        return kind not in self.reliable_kinds

    def drops(self) -> bool:
        """Decide the fate of the next eligible message."""
        return self.loss_rate > 0 and self._rng.random() < self.loss_rate

    def duplicates(self) -> bool:
        """Decide duplication for the next delivered eligible message."""
        return (
            self.duplication_rate > 0
            and self._rng.random() < self.duplication_rate
        )

    def corrupts(self) -> bool:
        """Decide corruption for the next delivered eligible copy.

        Drawn only when ``corruption_rate`` is positive, so a model
        with corruption disabled consumes exactly the same random
        stream as one built before corruption existed — old seeds keep
        their byte-identical schedules.
        """
        return (
            self.corruption_rate > 0
            and self._rng.random() < self.corruption_rate
        )

    def corrupt_bit(self) -> int:
        """Which bit of the wire checksum the in-flight flip damages."""
        return self._rng.randrange(32)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultModel(seed={self.seed}, loss_rate={self.loss_rate}, "
            f"duplication_rate={self.duplication_rate}, "
            f"corruption_rate={self.corruption_rate})"
        )


class UnreliableNetwork(Network):
    """A :class:`Network` with a seeded :class:`FaultModel` attached.

    >>> net = UnreliableNetwork(seed=7, loss_rate=0.05,
    ...                         duplication_rate=0.01)
    >>> net.faults.loss_rate
    0.05
    """

    def __init__(
        self,
        seed: int = 0,
        loss_rate: float = 0.0,
        duplication_rate: float = 0.0,
        corruption_rate: float = 0.0,
        latency: LatencyModel | None = None,
        reliable_kinds: frozenset[str] | None = None,
    ) -> None:
        super().__init__(
            latency=latency,
            faults=FaultModel(
                seed=seed,
                loss_rate=loss_rate,
                duplication_rate=duplication_rate,
                corruption_rate=corruption_rate,
                reliable_kinds=reliable_kinds,
            ),
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retry knobs for client-driven operations.

    The first (re)transmission fires ``timeout`` simulated seconds
    after the original send; each subsequent one waits ``backoff``
    times longer.  After ``max_retries`` unanswered retransmissions
    the operation fails with :class:`RetryExhaustedError`.

    The default timeout is generous relative to the simulated LAN
    round-trip (sub-millisecond, at most a few tens of milliseconds
    under jitter), so on a reliable network timers are always
    cancelled before firing and the policy is free.

    ``jitter`` decorrelates concurrent clients: with the default pure
    exponential backoff, clients that time out together retransmit in
    lockstep — a synchronized retry storm that re-loses every copy
    under bursty loss.  A positive ``jitter`` stretches each delay by
    a seeded random factor in ``[1, 1 + jitter]``, drawn from the
    policy's own ``random.Random(seed)`` stream, so retries spread
    out while remaining fully reproducible.  The default (``jitter=0``)
    returns exactly the historic deterministic schedule.
    """

    timeout: float = 0.25
    backoff: float = 2.0
    max_retries: int = 8
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")
        # The dataclass is frozen; stash the RNG around the guard.  A
        # single shared stream across all delay() callers is what does
        # the decorrelating: concurrent clients interleave draws.
        object.__setattr__(self, "_rng", random.Random(self.seed))

    def delay(self, attempt: int) -> float:
        """Wait before retransmission number ``attempt`` (1-based).

        With ``jitter == 0`` (the default) this is the exact historic
        value ``timeout * backoff**attempt`` and draws nothing.
        """
        base = self.timeout * self.backoff ** attempt
        if self.jitter == 0:
            return base
        return base * (1.0 + self.jitter * self._rng.random())


class CrashFaultModel:
    """A seeded schedule of node crash/restore events.

    Each target node alternates between up-time drawn from an
    exponential distribution with mean ``mttf`` and down-time with
    mean ``mttr``, out to ``horizon`` simulated seconds — the classic
    MTTF/MTTR availability model.  The schedule is planned up front
    (:meth:`plan`) but *applied lazily*: ``Network.run`` calls
    :meth:`advance` before processing each queued event, so crashes
    land exactly where the workload's clock has reached.  Scheduling
    them as network timers instead would break run-to-quiescence —
    the first synchronous operation would drain the entire crash
    schedule before returning.

    An optional ``gate`` callable (e.g.
    ``LHStarRSFile.crash_gate()``) lets a test or bench veto crashes
    that would exceed what the file can survive — such as a (k+1)-th
    failure in one parity group.  Vetoed events are counted in
    ``skipped`` and suppress the matching restore.
    """

    def __init__(
        self,
        seed: int = 0,
        mttf: float = 20.0,
        mttr: float = 2.0,
        horizon: float = 120.0,
    ) -> None:
        if mttf <= 0 or mttr <= 0:
            raise ValueError("mttf and mttr must be positive")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.seed = seed
        self.mttf = mttf
        self.mttr = mttr
        self.horizon = horizon
        self._rng = random.Random(seed)
        self._sequence = itertools.count()
        # (time, seq, action, node_id) — action is "crash"/"restore".
        self._events: list[tuple[float, int, str, Hashable]] = []
        # Crashes the gate vetoed: the paired restore is suppressed.
        self._suppressed: set[Hashable] = set()
        self.gate: Callable[[Hashable], bool] | None = None
        self.crashes = 0
        self.restores = 0
        self.skipped = 0

    def plan(
        self,
        targets: Iterable[Hashable],
        gate: Callable[[Hashable], bool] | None = None,
    ) -> int:
        """Draw a crash/restore schedule for ``targets``.

        Returns the number of crash events planned.  ``gate`` (kept
        for :meth:`advance`) is consulted at *apply* time, so it sees
        the failure pattern actually in force, not the planned one.
        """
        if gate is not None:
            self.gate = gate
        planned = 0
        for node_id in targets:
            at = self._rng.expovariate(1.0 / self.mttf)
            while at < self.horizon:
                self._push(at, "crash", node_id)
                planned += 1
                at += self._rng.expovariate(1.0 / self.mttr)
                if at >= self.horizon:
                    break
                self._push(at, "restore", node_id)
                at += self._rng.expovariate(1.0 / self.mttf)
        return planned

    def schedule_crash(self, at: float, node_id: Hashable) -> None:
        """Pin a single crash event at an exact time (tests)."""
        self._push(at, "crash", node_id)

    def schedule_restore(self, at: float, node_id: Hashable) -> None:
        """Pin a single restore event at an exact time (tests)."""
        self._push(at, "restore", node_id)

    def _push(self, at: float, action: str, node_id: Hashable) -> None:
        heapq.heappush(
            self._events, (at, next(self._sequence), action, node_id)
        )

    def pending(self) -> int:
        return len(self._events)

    def advance(self, network: Network, until: float) -> None:
        """Apply every scheduled event with time <= ``until``."""
        while self._events and self._events[0][0] <= until:
            __, __, action, node_id = heapq.heappop(self._events)
            if action == "crash":
                self._apply_crash(network, node_id)
            else:
                self._apply_restore(network, node_id)

    def _apply_crash(self, network: Network, node_id: Hashable) -> None:
        if network.is_crashed(node_id) or (
            self.gate is not None and not self.gate(node_id)
        ):
            self.skipped += 1
            self._suppressed.add(node_id)
            return
        try:
            # Membership is the network's call: the simulator checks
            # its ``nodes`` dict, the live backend asks the hosting
            # site — both raise UnknownNodeError for a bad target.
            network.crash(node_id)
        except UnknownNodeError:
            self.skipped += 1
            self._suppressed.add(node_id)
            return
        self.crashes += 1
        # Imported lazily: obs.trace imports the net package, so a
        # top-level import here would cycle during package init.
        from repro.obs.metrics import inc as metric_inc
        from repro.obs.trace import emit as obs_emit

        obs_emit("net.crash", node=repr(node_id))
        metric_inc("net.crash")

    def _apply_restore(self, network: Network, node_id: Hashable) -> None:
        if node_id in self._suppressed:
            # The matching crash never happened; swallow the restore.
            self._suppressed.discard(node_id)
            return
        try:
            restored = network.restore(node_id)
        except UnknownNodeError:
            restored = False
        if restored:
            self.restores += 1
            from repro.obs.metrics import inc as metric_inc
            from repro.obs.trace import emit as obs_emit

            obs_emit("net.restore", node=repr(node_id))
            metric_inc("net.restore")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CrashFaultModel(seed={self.seed}, mttf={self.mttf}, "
            f"mttr={self.mttr}, horizon={self.horizon}, "
            f"pending={self.pending()})"
        )
