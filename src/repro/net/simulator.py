"""The discrete-event message-passing core.

Protocol actors subclass :class:`Node` and exchange :class:`Message`
objects through a :class:`Network`.  Delivery is deterministic: events
are ordered by (arrival time, sequence number), and the latency model
is a pure function of message size.  Running the loop to quiescence
(:meth:`Network.run`) executes a whole protocol exchange; the simulated
clock then tells the protocol's critical-path latency and
:class:`~repro.net.stats.NetworkStats` its bandwidth cost.
"""

from __future__ import annotations

import heapq
import itertools
import random
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Hashable, Iterable

from repro.errors import UnknownNodeError
from repro.net.stats import NetworkStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.faults import CrashFaultModel, FaultModel


def _stable_bytes(value: Any) -> bytes:
    """A deterministic byte encoding of a message's checksummable view.

    Scalars and containers encode by value; opaque objects (records,
    matcher callables) contribute only their type name — the transport
    cannot see into them, and the checksum only needs to be a pure
    function of the message that both the sender and the receiver
    compute identically.  Deliberately free of ``repr`` of arbitrary
    objects (which can embed memory addresses) so the value is stable
    across processes.
    """
    if isinstance(value, bytes):
        return b"b" + value
    if isinstance(value, bool):
        return b"?1" if value else b"?0"
    if isinstance(value, int):
        return b"i%d" % value
    if isinstance(value, float):
        return b"f" + repr(value).encode("ascii")
    if isinstance(value, str):
        return b"s" + value.encode("utf-8", "backslashreplace")
    if value is None:
        return b"n"
    if isinstance(value, (list, tuple)):
        return b"l" + b"".join(_stable_bytes(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return b"S" + b"".join(
            sorted(_stable_bytes(item) for item in value)
        )
    if isinstance(value, dict):
        return b"d" + b"".join(
            _stable_bytes(key) + _stable_bytes(item)
            for key, item in value.items()
        )
    return b"o" + type(value).__name__.encode("ascii", "replace")


def wire_checksum(kind: str, payload: dict[str, Any], size: int) -> int:
    """The lightweight wire checksum of one message (CRC-32).

    Stamped by :meth:`Network.send` whenever payload corruption is
    possible and re-computed at delivery: a mismatch means the payload
    was damaged in flight, and the receiver discards the message (the
    sender's timeout/retry path redelivers).  Never zero — zero is the
    "not stamped" sentinel on :class:`Message`.
    """
    return zlib.crc32(_stable_bytes((kind, size, payload))) or 1


@dataclass(frozen=True)
class LatencyModel:
    """Message latency = ``fixed + size / bandwidth``.

    Defaults model a mid-2000s switched LAN (the paper's setting):
    a 0.2 ms per-message fixed cost and 100 Mbit/s of bandwidth.
    """

    fixed: float = 0.0002
    bandwidth_bytes_per_s: float = 12_500_000.0

    def latency(self, size: int) -> float:
        return self.fixed + size / self.bandwidth_bytes_per_s


class JitterLatencyModel(LatencyModel):
    """A latency model with deterministic pseudo-random jitter.

    Messages on *different* links can overtake each other, so
    protocols are exercised under reproducible cross-link reordering —
    the robustness tests run the whole LH* workload on this model.
    Messages on the same (src, dst) link never reorder:
    :meth:`Network.send` enforces pairwise FIFO (TCP semantics),
    whatever latencies this model draws.
    """

    def __init__(
        self,
        seed: int = 0,
        fixed: float = 0.0002,
        bandwidth_bytes_per_s: float = 12_500_000.0,
        jitter: float = 0.01,
    ) -> None:
        object.__setattr__(self, "fixed", fixed)
        object.__setattr__(
            self, "bandwidth_bytes_per_s", bandwidth_bytes_per_s
        )
        object.__setattr__(self, "jitter", jitter)
        object.__setattr__(self, "_rng", random.Random(seed))

    def latency(self, size: int) -> float:
        base = super().latency(size)
        return base + self._rng.random() * self.jitter


@dataclass
class Message:
    """A protocol message.

    ``kind`` routes the message inside the receiving node; ``payload``
    is an arbitrary dict; ``size`` is the accounted wire size in bytes
    (payloads are Python objects, so senders declare the size their
    encoding would have — helpers in the SDDS layer compute it).
    ``hops`` counts forwarding steps, which LH* bounds by 2.
    """

    src: Hashable
    dst: Hashable
    kind: str
    payload: dict[str, Any] = field(default_factory=dict)
    size: int = 64
    hops: int = 0
    send_time: float = 0.0
    arrival_time: float = 0.0
    #: Wire checksum stamped at send time (0 = not stamped).  A
    #: corrupted copy carries a checksum that no longer matches its
    #: payload, so delivery-time verification discards it.
    checksum: int = 0


class Timer:
    """A pending virtual-clock callback (see :meth:`Network.schedule`).

    Cancelled timers are discarded silently when the event loop
    reaches them: they neither advance the clock nor count as events,
    so a timer that is armed and cancelled leaves no trace in the
    simulation — protocols can arm timeout timers unconditionally at
    zero cost on the happy path.

    ``owner`` names the node the timer belongs to (``None`` for
    anonymous timers).  While the owner is crashed the timer is frozen
    instead of fired, and it is re-armed when the owner is restored —
    a dead host's pending timeouts do not run.
    """

    __slots__ = ("when", "callback", "cancelled", "fired", "owner")

    def __init__(
        self,
        when: float,
        callback: Callable[[], None],
        owner: Hashable | None = None,
    ) -> None:
        self.when = when
        self.callback = callback
        self.cancelled = False
        self.fired = False
        self.owner = owner

    def cancel(self) -> None:
        self.cancelled = True


class Node:
    """Base class for protocol actors.

    Subclasses implement :meth:`handle`; they send further messages via
    ``network.send(...)``.  A node's identifier may be any hashable.
    """

    #: Message kinds this node lets the network deliver in vectorised
    #: rounds (one :meth:`handle_batch` call per destination for a
    #: same-arrival slice) instead of one :meth:`handle` dispatch per
    #: message.  A kind may only be declared batchable when handling
    #: it never crashes, detaches or partitions nodes — the round
    #: dispatcher gates every message *before* the round's handlers
    #: run (see :meth:`Network.run`).  Empty by default: plain nodes
    #: keep strict per-message dispatch.
    BATCHABLE_KINDS: frozenset = frozenset()

    def __init__(self, node_id: Hashable) -> None:
        self.node_id = node_id
        self.network: "Network | None" = None

    def handle(self, message: Message) -> None:
        raise NotImplementedError

    def handle_batch(self, messages: list[Message]) -> None:
        """Handle one vectorised round's worth of same-kind messages.

        The default simply loops :meth:`handle` — semantics are
        *defined* to be identical to per-message dispatch; subclasses
        may override to share work across the batch (and must keep
        per-message replies and billing unchanged).
        """
        for message in messages:
            self.handle(message)

    def send(
        self,
        dst: Hashable,
        kind: str,
        payload: dict[str, Any] | None = None,
        size: int = 64,
        hops: int = 0,
    ) -> None:
        if self.network is None:
            raise RuntimeError(f"node {self.node_id!r} is not attached "
                               "to a network")
        self.network.send(
            self.node_id, dst, kind, payload or {}, size=size, hops=hops
        )


class Network:
    """The event loop: attach nodes, send messages, run to quiescence."""

    def __init__(
        self,
        latency: LatencyModel | None = None,
        faults: "FaultModel | None" = None,
        crashes: "CrashFaultModel | None" = None,
        vectorised_rounds: bool = True,
    ) -> None:
        self.latency = latency or LatencyModel()
        #: Deliver same-arrival slices of batchable messages (see
        #: :attr:`Node.BATCHABLE_KINDS`) as per-destination batches —
        #: one handler invocation per bucket per round instead of one
        #: per message.  Billing, fault rolls, gate checks and
        #: observer callbacks stay per message, in pop order; ``False``
        #: pins strict per-message dispatch (the A/B reference).
        self.vectorised_rounds = vectorised_rounds
        #: Optional fault injector (see :mod:`repro.net.faults`).
        #: ``None`` — and a model with zero rates — means perfectly
        #: reliable delivery, bit-identical to the historic behaviour.
        self.faults = faults
        #: Optional crash schedule (see
        #: :class:`repro.net.faults.CrashFaultModel`).  Consulted
        #: lazily by :meth:`run` as the clock advances, so crash and
        #: restore events interleave with the workload instead of
        #: being drained up front by the first run-to-quiescence.
        self.crashes = crashes
        #: Additional lazily-advanced fault schedules (duck-typed:
        #: ``advance(network, until)``), consulted exactly like
        #: :attr:`crashes` before each queued event — this is where a
        #: :class:`repro.chaos.nemesis.Nemesis` plugs in.
        self.schedules: list[Any] = []
        #: Optional observability hook (duck-typed; see
        #: :class:`repro.obs.metrics.NetworkMetricsObserver`): called
        #: as ``on_send(kind, size)`` for every message charged to the
        #: wire, ``on_drop(kind, size)`` when the fault model eats one,
        #: and ``on_deliver(kind, size, latency)`` on delivery.  The
        #: hot paths guard every call with a ``None`` check, so an
        #: unobserved network pays nothing.
        self.observer: Any | None = None
        self.nodes: dict[Hashable, Node] = {}
        self.stats = NetworkStats()
        self.now = 0.0
        self._queue: list[tuple[float, int, Message]] = []
        self._sequence = itertools.count()
        self.delivered: int = 0
        # Pairwise FIFO (TCP semantics): two messages on the same
        # (src, dst) link are never reordered, whatever the latency
        # model says.  Cross-link reordering remains free.
        self._link_clock: dict[tuple[Hashable, Hashable], float] = {}
        #: Node ids currently crashed (see :meth:`crash`).
        self._crashed: set[Hashable] = set()
        #: Timers frozen while their owner is down, re-armed on restore.
        self._frozen_timers: dict[Hashable, list[Timer]] = {}
        #: Severed directed links (see :meth:`partition`): a message is
        #: lost — billed as ``partitioned_drops`` — when its (src, dst)
        #: link is severed at the instant it would arrive.
        self._partitions: set[tuple[Hashable, Hashable]] = set()

    # -- topology -----------------------------------------------------------

    def attach(self, node: Node) -> Node:
        """Register ``node``; its ``node_id`` must be unused."""
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        node.network = self
        self.nodes[node.node_id] = node
        return node

    def detach(self, node_id: Hashable) -> None:
        if node_id not in self.nodes:
            raise UnknownNodeError(f"unknown node {node_id!r}")
        node = self.nodes.pop(node_id)
        node.network = None
        # Purge per-link FIFO state: a detached node's links are gone,
        # and a later re-attach under the same id must start fresh
        # rather than inherit a stale FIFO floor.
        for link in [
            link for link in self._link_clock if node_id in link
        ]:
            del self._link_clock[link]
        # A detached node is gone for good: forget its crash flag and
        # drop its frozen timers (their callbacks reference the dead
        # node's state).
        self._crashed.discard(node_id)
        self._frozen_timers.pop(node_id, None)
        # Partitions are per-link too: a re-attach under the same id
        # must not inherit a stale severed link.
        if self._partitions:
            self._partitions = {
                link for link in self._partitions
                if node_id not in link
            }

    def __contains__(self, node_id: Hashable) -> bool:
        return node_id in self.nodes

    # -- crash faults ---------------------------------------------------------

    def crash(self, node_id: Hashable) -> None:
        """Mark ``node_id`` as crashed.

        The node stays attached (its identity and address survive),
        but messages addressed to it are dropped at delivery time —
        billed as :attr:`~repro.net.stats.NetworkStats.crashed_drops`
        — and its pending timers are frozen until :meth:`restore`.
        Crashing an already-crashed node is a no-op.
        """
        if node_id not in self.nodes:
            raise UnknownNodeError(f"unknown node {node_id!r}")
        self._crashed.add(node_id)

    def restore(self, node_id: Hashable) -> bool:
        """Bring a crashed node back up.

        Frozen timers owned by the node are re-armed, due no earlier
        than now (a timeout that "expired" during the outage fires
        immediately after the reboot).  Returns ``False`` when the
        node was not crashed or no longer exists.
        """
        if node_id not in self._crashed:
            return False
        self._crashed.discard(node_id)
        frozen = self._frozen_timers.pop(node_id, [])
        if node_id not in self.nodes:
            return False
        for timer in frozen:
            if timer.cancelled:
                continue
            timer.when = max(timer.when, self.now)
            heapq.heappush(
                self._queue, (timer.when, next(self._sequence), timer)
            )
        return True

    def is_crashed(self, node_id: Hashable) -> bool:
        return node_id in self._crashed

    # -- partitions -----------------------------------------------------------

    @staticmethod
    def _as_group(group: Any) -> list[Hashable]:
        """Normalise a partition argument to a list of node ids.

        Node ids are themselves tuples (``("bucket", name, addr)``), so
        only genuine collections — lists, sets, frozensets, iterators —
        are treated as groups; a tuple, string, or any other value is a
        single node id.
        """
        if isinstance(group, list):
            return group
        if isinstance(group, (set, frozenset)):
            return sorted(group, key=repr)
        if isinstance(group, (tuple, str)) or not isinstance(
            group, Iterable
        ):
            return [group]
        return list(group)

    def partition(
        self,
        group_a: Any,
        group_b: Any,
        symmetric: bool = True,
    ) -> None:
        """Sever the links between ``group_a`` and ``group_b``.

        Each argument is a single node id or a collection of node ids
        (node ids being tuples, pass lists/sets for groups).  Messages
        crossing a severed link are lost at the instant they would
        arrive — the datagram is already on the wire when the cable is
        cut — and billed to
        :attr:`~repro.net.stats.NetworkStats.partitioned_drops`.
        With ``symmetric=False`` only the a→b direction is severed
        (asymmetric partitions: b can still reach a).  Partitioning is
        idempotent and does not require the ids to be attached.
        """
        for a in self._as_group(group_a):
            for b in self._as_group(group_b):
                if a == b:
                    continue
                self._partitions.add((a, b))
                if symmetric:
                    self._partitions.add((b, a))

    def heal(
        self,
        group_a: Any | None = None,
        group_b: Any | None = None,
        symmetric: bool = True,
    ) -> None:
        """Restore severed links.

        With no arguments every partition heals.  With both groups the
        exact links :meth:`partition` severed are restored (again
        direction-aware under ``symmetric=False``).  Healing a link
        that was never severed is a no-op.
        """
        if group_a is None and group_b is None:
            self._partitions.clear()
            return
        if group_a is None or group_b is None:
            raise ValueError("heal takes no groups or both groups")
        for a in self._as_group(group_a):
            for b in self._as_group(group_b):
                self._partitions.discard((a, b))
                if symmetric:
                    self._partitions.discard((b, a))

    def is_partitioned(self, src: Hashable, dst: Hashable) -> bool:
        """Whether the directed link ``src``→``dst`` is severed."""
        return (src, dst) in self._partitions

    # -- messaging ------------------------------------------------------------

    def send(
        self,
        src: Hashable,
        dst: Hashable,
        kind: str,
        payload: dict[str, Any] | None = None,
        size: int = 64,
        hops: int = 0,
    ) -> Message:
        """Enqueue a message; it is delivered when :meth:`run` reaches it.

        With a fault model attached, eligible messages may be dropped
        (charged to the sender, never delivered) or duplicated (the
        copy also hits the wire and arrives after the original).  The
        returned message is the first delivered copy, or an
        undeliverable husk (``arrival_time = inf``) when dropped.
        """
        if dst not in self.nodes:
            raise UnknownNodeError(f"unknown destination node {dst!r}")
        payload = payload or {}
        self.stats.record(kind, size)
        observer = self.observer
        if observer is not None:
            observer.on_send(kind, size)
        copies = 1
        base_checksum = 0
        faults = self.faults
        if faults is not None and faults.applies(kind):
            if faults.drops():
                self.stats.dropped += 1
                if observer is not None:
                    observer.on_drop(kind, size)
                return Message(
                    src=src, dst=dst, kind=kind, payload=payload,
                    size=size, hops=hops, send_time=self.now,
                    arrival_time=float("inf"),
                )
            if faults.duplicates():
                copies = 2
            if faults.corruption_rate > 0:
                # Stamp the wire checksum only when corruption is
                # possible: a zero corruption rate stays byte-identical
                # to the historic behaviour (no draws, no hashing).
                base_checksum = wire_checksum(kind, payload, size)
        first: Message | None = None
        for copy in range(copies):
            if copy:
                self.stats.record(kind, size)
                self.stats.duplicated += 1
                if observer is not None:
                    observer.on_send(kind, size)
            checksum = base_checksum
            if base_checksum and faults.corrupts():
                # A payload bit flipped in flight: model it by damaging
                # the stamp instead of the (Python-object) payload, so
                # delivery-time verification fails exactly as it would
                # for a real flipped payload byte.
                checksum ^= 1 << faults.corrupt_bit()
                if checksum == 0:
                    # The flip collided with the stamp: keep the copy
                    # visibly damaged rather than reverting to the
                    # "not stamped" sentinel.
                    checksum = 0xFFFFFFFF
            arrival = self.now + self.latency.latency(size)
            link = (src, dst)
            floor = self._link_clock.get(link)
            if floor is not None and arrival <= floor:
                arrival = floor + 1e-12
            self._link_clock[link] = arrival
            message = Message(
                src=src,
                dst=dst,
                kind=kind,
                payload=payload,
                size=size,
                hops=hops,
                send_time=self.now,
                arrival_time=arrival,
                checksum=checksum,
            )
            heapq.heappush(
                self._queue,
                (message.arrival_time, next(self._sequence), message),
            )
            if first is None:
                first = message
        return first

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        owner: Hashable | None = None,
    ) -> Timer:
        """Arm a virtual-clock timer ``delay`` seconds from now.

        The callback runs inside :meth:`run`, interleaved in time
        order with message deliveries — this is how nodes act without
        an inbound message (client retransmission timeouts).  Returns
        the :class:`Timer`; call :meth:`Timer.cancel` to disarm it.
        ``owner`` ties the timer to a node: timers of a crashed owner
        are frozen instead of fired (see :meth:`crash`).
        """
        if delay < 0:
            raise ValueError("timer delay must be non-negative")
        timer = Timer(self.now + delay, callback, owner=owner)
        heapq.heappush(
            self._queue, (timer.when, next(self._sequence), timer)
        )
        return timer

    def run(self, max_events: int = 10_000_000) -> int:
        """Deliver queued messages (and any they trigger) in time order.

        Returns the number of messages delivered.  ``max_events`` is a
        runaway-protocol guard.
        """
        delivered = 0
        processed = 0
        while self._queue:
            if processed >= max_events:
                raise RuntimeError(
                    f"network did not quiesce within {max_events} events"
                )
            arrival, __, item = heapq.heappop(self._queue)
            if self.crashes is not None:
                # Apply crash/restore events scheduled before this
                # item's time: the crash schedule advances with the
                # traffic, never ahead of it.
                self.crashes.advance(self, arrival)
            for schedule in self.schedules:
                # Additional lazily-advanced schedules (the chaos
                # nemesis) compose the same way.
                schedule.advance(self, arrival)
            if isinstance(item, Timer):
                if item.cancelled:
                    # Disarmed before firing: discard silently, without
                    # advancing the clock — the happy path stays
                    # bit-identical to a timerless run.
                    continue
                if item.owner is not None and item.owner in self._crashed:
                    # The owner is down: freeze the timer; restore()
                    # re-arms it.  No clock advance, no event charged.
                    self._frozen_timers.setdefault(item.owner, []).append(
                        item
                    )
                    continue
                self.now = max(self.now, arrival)
                item.fired = True
                item.callback()
                processed += 1
                continue
            self.now = max(self.now, arrival)
            if (item.src, item.dst) in self._partitions:
                # The link was severed at the instant the message would
                # have arrived: the datagram dies on the cut cable.
                self.stats.partitioned_drops += 1
                if self.observer is not None:
                    self.observer.on_drop(item.kind, item.size)
                processed += 1
                continue
            if item.dst in self._crashed or item.dst not in self.nodes:
                # Dead (or meanwhile detached) destination: the message
                # crossed the wire and dies here.  Bill it so no
                # recovery byte goes missing from the accounting.
                self.stats.crashed_drops += 1
                if self.observer is not None:
                    self.observer.on_drop(item.kind, item.size)
                processed += 1
                continue
            if item.checksum and item.checksum != wire_checksum(
                item.kind, item.payload, item.size
            ):
                # The stamp no longer matches the payload: corruption
                # in flight.  The receiver discards the message and the
                # sender's timeout/retry path pays for the redelivery —
                # corruption degrades cost, never correctness.
                self.stats.corrupted += 1
                if self.observer is not None:
                    self.observer.on_drop(item.kind, item.size)
                processed += 1
                continue
            if self.observer is not None:
                self.observer.on_deliver(
                    item.kind, item.size, self.now - item.send_time
                )
            node = self.nodes[item.dst]
            if (
                self.vectorised_rounds
                and item.kind in node.BATCHABLE_KINDS
                and self._queue
                and self._queue[0][0] == arrival
            ):
                round_delivered, round_processed = self._finish_round(
                    arrival, item, max_events - processed - 1
                )
                delivered += round_delivered
                processed += round_processed
            else:
                node.handle(item)
                delivered += 1
            processed += 1
        self.delivered += delivered
        return delivered

    def _finish_round(
        self, arrival: float, first: Message, budget: int
    ) -> tuple[int, int]:
        """Deliver one vectorised round headed by ``first``.

        Collects the contiguous run of same-arrival *batchable*
        messages from the queue top — stopping at a timer, a
        non-batchable message, or an arrival-time change — applying
        the exact per-message sequence of the scalar loop to each in
        pop order: fault-schedule advance, partition / crash /
        checksum gates, billing and observer callbacks.  Survivors are
        then grouped per (destination, kind) in first-appearance order
        and delivered via one :meth:`Node.handle_batch` call each.

        Within one destination, messages keep their pop order, and
        destinations are handled in the order they first appear — so
        for the common fan-out shape (each destination once per
        slice, e.g. one client's scan broadcast) the handler
        execution order is *identical* to per-message dispatch.
        Batchable handlers never crash, detach or partition nodes
        (:attr:`Node.BATCHABLE_KINDS`), so gating before the round's
        handlers run is equivalent to the scalar loop's gate-then-
        handle interleaving.

        Returns ``(delivered, extra processed)`` — the head message
        counts as processed in the caller.
        """
        survivors = [first]
        extra_processed = 0
        queue = self._queue
        while queue and extra_processed < budget:
            when, __, item = queue[0]
            if when != arrival or isinstance(item, Timer):
                break
            node = self.nodes.get(item.dst)
            if node is None or item.kind not in node.BATCHABLE_KINDS:
                break
            heapq.heappop(queue)
            extra_processed += 1
            if self.crashes is not None:
                self.crashes.advance(self, arrival)
            for schedule in self.schedules:
                schedule.advance(self, arrival)
            if (item.src, item.dst) in self._partitions:
                self.stats.partitioned_drops += 1
                if self.observer is not None:
                    self.observer.on_drop(item.kind, item.size)
                continue
            if item.dst in self._crashed or item.dst not in self.nodes:
                self.stats.crashed_drops += 1
                if self.observer is not None:
                    self.observer.on_drop(item.kind, item.size)
                continue
            if item.checksum and item.checksum != wire_checksum(
                item.kind, item.payload, item.size
            ):
                self.stats.corrupted += 1
                if self.observer is not None:
                    self.observer.on_drop(item.kind, item.size)
                continue
            if self.observer is not None:
                self.observer.on_deliver(
                    item.kind, item.size, self.now - item.send_time
                )
            survivors.append(item)
        batches: dict[tuple[Hashable, str], list[Message]] = {}
        for message in survivors:
            batches.setdefault(
                (message.dst, message.kind), []
            ).append(message)
        delivered = 0
        for (dst, __), messages in batches.items():
            self.nodes[dst].handle_batch(messages)
            delivered += len(messages)
        return delivered, extra_processed

    def reset_clock(self) -> None:
        """Rewind the clock (between benchmark operations)."""
        live = [
            entry for entry in self._queue
            if not (isinstance(entry[2], Timer) and entry[2].cancelled)
        ]
        if live:
            raise RuntimeError("cannot reset the clock with messages "
                               "in flight")
        self._queue.clear()
        self.now = 0.0
