"""The discrete-event message-passing core.

Protocol actors subclass :class:`Node` and exchange :class:`Message`
objects through a :class:`Network`.  Delivery is deterministic: events
are ordered by (arrival time, sequence number), and the latency model
is a pure function of message size.  Running the loop to quiescence
(:meth:`Network.run`) executes a whole protocol exchange; the simulated
clock then tells the protocol's critical-path latency and
:class:`~repro.net.stats.NetworkStats` its bandwidth cost.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Hashable

from repro.net.stats import NetworkStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.faults import CrashFaultModel, FaultModel


@dataclass(frozen=True)
class LatencyModel:
    """Message latency = ``fixed + size / bandwidth``.

    Defaults model a mid-2000s switched LAN (the paper's setting):
    a 0.2 ms per-message fixed cost and 100 Mbit/s of bandwidth.
    """

    fixed: float = 0.0002
    bandwidth_bytes_per_s: float = 12_500_000.0

    def latency(self, size: int) -> float:
        return self.fixed + size / self.bandwidth_bytes_per_s


class JitterLatencyModel(LatencyModel):
    """A latency model with deterministic pseudo-random jitter.

    Messages on *different* links can overtake each other, so
    protocols are exercised under reproducible cross-link reordering —
    the robustness tests run the whole LH* workload on this model.
    Messages on the same (src, dst) link never reorder:
    :meth:`Network.send` enforces pairwise FIFO (TCP semantics),
    whatever latencies this model draws.
    """

    def __init__(
        self,
        seed: int = 0,
        fixed: float = 0.0002,
        bandwidth_bytes_per_s: float = 12_500_000.0,
        jitter: float = 0.01,
    ) -> None:
        object.__setattr__(self, "fixed", fixed)
        object.__setattr__(
            self, "bandwidth_bytes_per_s", bandwidth_bytes_per_s
        )
        object.__setattr__(self, "jitter", jitter)
        object.__setattr__(self, "_rng", random.Random(seed))

    def latency(self, size: int) -> float:
        base = super().latency(size)
        return base + self._rng.random() * self.jitter


@dataclass
class Message:
    """A protocol message.

    ``kind`` routes the message inside the receiving node; ``payload``
    is an arbitrary dict; ``size`` is the accounted wire size in bytes
    (payloads are Python objects, so senders declare the size their
    encoding would have — helpers in the SDDS layer compute it).
    ``hops`` counts forwarding steps, which LH* bounds by 2.
    """

    src: Hashable
    dst: Hashable
    kind: str
    payload: dict[str, Any] = field(default_factory=dict)
    size: int = 64
    hops: int = 0
    send_time: float = 0.0
    arrival_time: float = 0.0


class Timer:
    """A pending virtual-clock callback (see :meth:`Network.schedule`).

    Cancelled timers are discarded silently when the event loop
    reaches them: they neither advance the clock nor count as events,
    so a timer that is armed and cancelled leaves no trace in the
    simulation — protocols can arm timeout timers unconditionally at
    zero cost on the happy path.

    ``owner`` names the node the timer belongs to (``None`` for
    anonymous timers).  While the owner is crashed the timer is frozen
    instead of fired, and it is re-armed when the owner is restored —
    a dead host's pending timeouts do not run.
    """

    __slots__ = ("when", "callback", "cancelled", "fired", "owner")

    def __init__(
        self,
        when: float,
        callback: Callable[[], None],
        owner: Hashable | None = None,
    ) -> None:
        self.when = when
        self.callback = callback
        self.cancelled = False
        self.fired = False
        self.owner = owner

    def cancel(self) -> None:
        self.cancelled = True


class Node:
    """Base class for protocol actors.

    Subclasses implement :meth:`handle`; they send further messages via
    ``network.send(...)``.  A node's identifier may be any hashable.
    """

    def __init__(self, node_id: Hashable) -> None:
        self.node_id = node_id
        self.network: "Network | None" = None

    def handle(self, message: Message) -> None:
        raise NotImplementedError

    def send(
        self,
        dst: Hashable,
        kind: str,
        payload: dict[str, Any] | None = None,
        size: int = 64,
        hops: int = 0,
    ) -> None:
        if self.network is None:
            raise RuntimeError(f"node {self.node_id!r} is not attached "
                               "to a network")
        self.network.send(
            self.node_id, dst, kind, payload or {}, size=size, hops=hops
        )


class Network:
    """The event loop: attach nodes, send messages, run to quiescence."""

    def __init__(
        self,
        latency: LatencyModel | None = None,
        faults: "FaultModel | None" = None,
        crashes: "CrashFaultModel | None" = None,
    ) -> None:
        self.latency = latency or LatencyModel()
        #: Optional fault injector (see :mod:`repro.net.faults`).
        #: ``None`` — and a model with zero rates — means perfectly
        #: reliable delivery, bit-identical to the historic behaviour.
        self.faults = faults
        #: Optional crash schedule (see
        #: :class:`repro.net.faults.CrashFaultModel`).  Consulted
        #: lazily by :meth:`run` as the clock advances, so crash and
        #: restore events interleave with the workload instead of
        #: being drained up front by the first run-to-quiescence.
        self.crashes = crashes
        #: Optional observability hook (duck-typed; see
        #: :class:`repro.obs.metrics.NetworkMetricsObserver`): called
        #: as ``on_send(kind, size)`` for every message charged to the
        #: wire, ``on_drop(kind, size)`` when the fault model eats one,
        #: and ``on_deliver(kind, size, latency)`` on delivery.  The
        #: hot paths guard every call with a ``None`` check, so an
        #: unobserved network pays nothing.
        self.observer: Any | None = None
        self.nodes: dict[Hashable, Node] = {}
        self.stats = NetworkStats()
        self.now = 0.0
        self._queue: list[tuple[float, int, Message]] = []
        self._sequence = itertools.count()
        self.delivered: int = 0
        # Pairwise FIFO (TCP semantics): two messages on the same
        # (src, dst) link are never reordered, whatever the latency
        # model says.  Cross-link reordering remains free.
        self._link_clock: dict[tuple[Hashable, Hashable], float] = {}
        #: Node ids currently crashed (see :meth:`crash`).
        self._crashed: set[Hashable] = set()
        #: Timers frozen while their owner is down, re-armed on restore.
        self._frozen_timers: dict[Hashable, list[Timer]] = {}

    # -- topology -----------------------------------------------------------

    def attach(self, node: Node) -> Node:
        """Register ``node``; its ``node_id`` must be unused."""
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        node.network = self
        self.nodes[node.node_id] = node
        return node

    def detach(self, node_id: Hashable) -> None:
        node = self.nodes.pop(node_id)
        node.network = None
        # Purge per-link FIFO state: a detached node's links are gone,
        # and a later re-attach under the same id must start fresh
        # rather than inherit a stale FIFO floor.
        for link in [
            link for link in self._link_clock if node_id in link
        ]:
            del self._link_clock[link]
        # A detached node is gone for good: forget its crash flag and
        # drop its frozen timers (their callbacks reference the dead
        # node's state).
        self._crashed.discard(node_id)
        self._frozen_timers.pop(node_id, None)

    def __contains__(self, node_id: Hashable) -> bool:
        return node_id in self.nodes

    # -- crash faults ---------------------------------------------------------

    def crash(self, node_id: Hashable) -> None:
        """Mark ``node_id`` as crashed.

        The node stays attached (its identity and address survive),
        but messages addressed to it are dropped at delivery time —
        billed as :attr:`~repro.net.stats.NetworkStats.crashed_drops`
        — and its pending timers are frozen until :meth:`restore`.
        Crashing an already-crashed node is a no-op.
        """
        if node_id not in self.nodes:
            raise KeyError(f"unknown node {node_id!r}")
        self._crashed.add(node_id)

    def restore(self, node_id: Hashable) -> bool:
        """Bring a crashed node back up.

        Frozen timers owned by the node are re-armed, due no earlier
        than now (a timeout that "expired" during the outage fires
        immediately after the reboot).  Returns ``False`` when the
        node was not crashed or no longer exists.
        """
        if node_id not in self._crashed:
            return False
        self._crashed.discard(node_id)
        frozen = self._frozen_timers.pop(node_id, [])
        if node_id not in self.nodes:
            return False
        for timer in frozen:
            if timer.cancelled:
                continue
            timer.when = max(timer.when, self.now)
            heapq.heappush(
                self._queue, (timer.when, next(self._sequence), timer)
            )
        return True

    def is_crashed(self, node_id: Hashable) -> bool:
        return node_id in self._crashed

    # -- messaging ------------------------------------------------------------

    def send(
        self,
        src: Hashable,
        dst: Hashable,
        kind: str,
        payload: dict[str, Any] | None = None,
        size: int = 64,
        hops: int = 0,
    ) -> Message:
        """Enqueue a message; it is delivered when :meth:`run` reaches it.

        With a fault model attached, eligible messages may be dropped
        (charged to the sender, never delivered) or duplicated (the
        copy also hits the wire and arrives after the original).  The
        returned message is the first delivered copy, or an
        undeliverable husk (``arrival_time = inf``) when dropped.
        """
        if dst not in self.nodes:
            raise KeyError(f"unknown destination node {dst!r}")
        payload = payload or {}
        self.stats.record(kind, size)
        observer = self.observer
        if observer is not None:
            observer.on_send(kind, size)
        copies = 1
        faults = self.faults
        if faults is not None and faults.applies(kind):
            if faults.drops():
                self.stats.dropped += 1
                if observer is not None:
                    observer.on_drop(kind, size)
                return Message(
                    src=src, dst=dst, kind=kind, payload=payload,
                    size=size, hops=hops, send_time=self.now,
                    arrival_time=float("inf"),
                )
            if faults.duplicates():
                copies = 2
        first: Message | None = None
        for copy in range(copies):
            if copy:
                self.stats.record(kind, size)
                self.stats.duplicated += 1
                if observer is not None:
                    observer.on_send(kind, size)
            arrival = self.now + self.latency.latency(size)
            link = (src, dst)
            floor = self._link_clock.get(link)
            if floor is not None and arrival <= floor:
                arrival = floor + 1e-12
            self._link_clock[link] = arrival
            message = Message(
                src=src,
                dst=dst,
                kind=kind,
                payload=payload,
                size=size,
                hops=hops,
                send_time=self.now,
                arrival_time=arrival,
            )
            heapq.heappush(
                self._queue,
                (message.arrival_time, next(self._sequence), message),
            )
            if first is None:
                first = message
        return first

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        owner: Hashable | None = None,
    ) -> Timer:
        """Arm a virtual-clock timer ``delay`` seconds from now.

        The callback runs inside :meth:`run`, interleaved in time
        order with message deliveries — this is how nodes act without
        an inbound message (client retransmission timeouts).  Returns
        the :class:`Timer`; call :meth:`Timer.cancel` to disarm it.
        ``owner`` ties the timer to a node: timers of a crashed owner
        are frozen instead of fired (see :meth:`crash`).
        """
        if delay < 0:
            raise ValueError("timer delay must be non-negative")
        timer = Timer(self.now + delay, callback, owner=owner)
        heapq.heappush(
            self._queue, (timer.when, next(self._sequence), timer)
        )
        return timer

    def run(self, max_events: int = 10_000_000) -> int:
        """Deliver queued messages (and any they trigger) in time order.

        Returns the number of messages delivered.  ``max_events`` is a
        runaway-protocol guard.
        """
        delivered = 0
        processed = 0
        while self._queue:
            if processed >= max_events:
                raise RuntimeError(
                    f"network did not quiesce within {max_events} events"
                )
            arrival, __, item = heapq.heappop(self._queue)
            if self.crashes is not None:
                # Apply crash/restore events scheduled before this
                # item's time: the crash schedule advances with the
                # traffic, never ahead of it.
                self.crashes.advance(self, arrival)
            if isinstance(item, Timer):
                if item.cancelled:
                    # Disarmed before firing: discard silently, without
                    # advancing the clock — the happy path stays
                    # bit-identical to a timerless run.
                    continue
                if item.owner is not None and item.owner in self._crashed:
                    # The owner is down: freeze the timer; restore()
                    # re-arms it.  No clock advance, no event charged.
                    self._frozen_timers.setdefault(item.owner, []).append(
                        item
                    )
                    continue
                self.now = max(self.now, arrival)
                item.fired = True
                item.callback()
                processed += 1
                continue
            self.now = max(self.now, arrival)
            if item.dst in self._crashed or item.dst not in self.nodes:
                # Dead (or meanwhile detached) destination: the message
                # crossed the wire and dies here.  Bill it so no
                # recovery byte goes missing from the accounting.
                self.stats.crashed_drops += 1
                if self.observer is not None:
                    self.observer.on_drop(item.kind, item.size)
                processed += 1
                continue
            if self.observer is not None:
                self.observer.on_deliver(
                    item.kind, item.size, self.now - item.send_time
                )
            self.nodes[item.dst].handle(item)
            delivered += 1
            processed += 1
        self.delivered += delivered
        return delivered

    def reset_clock(self) -> None:
        """Rewind the clock (between benchmark operations)."""
        live = [
            entry for entry in self._queue
            if not (isinstance(entry[2], Timer) and entry[2].cancelled)
        ]
        if live:
            raise RuntimeError("cannot reset the clock with messages "
                               "in flight")
        self._queue.clear()
        self.now = 0.0
