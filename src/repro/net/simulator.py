"""The discrete-event message-passing core.

Protocol actors subclass :class:`Node` and exchange :class:`Message`
objects through a :class:`Network`.  Delivery is deterministic: events
are ordered by (arrival time, sequence number), and the latency model
is a pure function of message size.  Running the loop to quiescence
(:meth:`Network.run`) executes a whole protocol exchange; the simulated
clock then tells the protocol's critical-path latency and
:class:`~repro.net.stats.NetworkStats` its bandwidth cost.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.net.stats import NetworkStats


@dataclass(frozen=True)
class LatencyModel:
    """Message latency = ``fixed + size / bandwidth``.

    Defaults model a mid-2000s switched LAN (the paper's setting):
    a 0.2 ms per-message fixed cost and 100 Mbit/s of bandwidth.
    """

    fixed: float = 0.0002
    bandwidth_bytes_per_s: float = 12_500_000.0

    def latency(self, size: int) -> float:
        return self.fixed + size / self.bandwidth_bytes_per_s


class JitterLatencyModel(LatencyModel):
    """A latency model with deterministic pseudo-random jitter.

    Messages between the same pair can overtake each other, so
    protocols are exercised under arbitrary (but reproducible)
    reordering — the robustness tests run the whole LH* workload on
    this model.
    """

    def __init__(
        self,
        seed: int = 0,
        fixed: float = 0.0002,
        bandwidth_bytes_per_s: float = 12_500_000.0,
        jitter: float = 0.01,
    ) -> None:
        object.__setattr__(self, "fixed", fixed)
        object.__setattr__(
            self, "bandwidth_bytes_per_s", bandwidth_bytes_per_s
        )
        object.__setattr__(self, "jitter", jitter)
        object.__setattr__(self, "_rng", random.Random(seed))

    def latency(self, size: int) -> float:
        base = super().latency(size)
        return base + self._rng.random() * self.jitter


@dataclass
class Message:
    """A protocol message.

    ``kind`` routes the message inside the receiving node; ``payload``
    is an arbitrary dict; ``size`` is the accounted wire size in bytes
    (payloads are Python objects, so senders declare the size their
    encoding would have — helpers in the SDDS layer compute it).
    ``hops`` counts forwarding steps, which LH* bounds by 2.
    """

    src: Hashable
    dst: Hashable
    kind: str
    payload: dict[str, Any] = field(default_factory=dict)
    size: int = 64
    hops: int = 0
    send_time: float = 0.0
    arrival_time: float = 0.0


class Node:
    """Base class for protocol actors.

    Subclasses implement :meth:`handle`; they send further messages via
    ``network.send(...)``.  A node's identifier may be any hashable.
    """

    def __init__(self, node_id: Hashable) -> None:
        self.node_id = node_id
        self.network: "Network | None" = None

    def handle(self, message: Message) -> None:
        raise NotImplementedError

    def send(
        self,
        dst: Hashable,
        kind: str,
        payload: dict[str, Any] | None = None,
        size: int = 64,
        hops: int = 0,
    ) -> None:
        if self.network is None:
            raise RuntimeError(f"node {self.node_id!r} is not attached "
                               "to a network")
        self.network.send(
            self.node_id, dst, kind, payload or {}, size=size, hops=hops
        )


class Network:
    """The event loop: attach nodes, send messages, run to quiescence."""

    def __init__(self, latency: LatencyModel | None = None) -> None:
        self.latency = latency or LatencyModel()
        self.nodes: dict[Hashable, Node] = {}
        self.stats = NetworkStats()
        self.now = 0.0
        self._queue: list[tuple[float, int, Message]] = []
        self._sequence = itertools.count()
        self.delivered: int = 0
        # Pairwise FIFO (TCP semantics): two messages on the same
        # (src, dst) link are never reordered, whatever the latency
        # model says.  Cross-link reordering remains free.
        self._link_clock: dict[tuple[Hashable, Hashable], float] = {}

    # -- topology -----------------------------------------------------------

    def attach(self, node: Node) -> Node:
        """Register ``node``; its ``node_id`` must be unused."""
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        node.network = self
        self.nodes[node.node_id] = node
        return node

    def detach(self, node_id: Hashable) -> None:
        node = self.nodes.pop(node_id)
        node.network = None

    def __contains__(self, node_id: Hashable) -> bool:
        return node_id in self.nodes

    # -- messaging ------------------------------------------------------------

    def send(
        self,
        src: Hashable,
        dst: Hashable,
        kind: str,
        payload: dict[str, Any] | None = None,
        size: int = 64,
        hops: int = 0,
    ) -> Message:
        """Enqueue a message; it is delivered when :meth:`run` reaches it."""
        if dst not in self.nodes:
            raise KeyError(f"unknown destination node {dst!r}")
        arrival = self.now + self.latency.latency(size)
        link = (src, dst)
        floor = self._link_clock.get(link)
        if floor is not None and arrival <= floor:
            arrival = floor + 1e-12
        self._link_clock[link] = arrival
        message = Message(
            src=src,
            dst=dst,
            kind=kind,
            payload=payload or {},
            size=size,
            hops=hops,
            send_time=self.now,
            arrival_time=arrival,
        )
        self.stats.record(kind, size)
        heapq.heappush(
            self._queue, (message.arrival_time, next(self._sequence), message)
        )
        return message

    def run(self, max_events: int = 10_000_000) -> int:
        """Deliver queued messages (and any they trigger) in time order.

        Returns the number of messages delivered.  ``max_events`` is a
        runaway-protocol guard.
        """
        delivered = 0
        while self._queue:
            if delivered >= max_events:
                raise RuntimeError(
                    f"network did not quiesce within {max_events} events"
                )
            arrival, __, message = heapq.heappop(self._queue)
            self.now = max(self.now, arrival)
            self.nodes[message.dst].handle(message)
            delivered += 1
        self.delivered += delivered
        return delivered

    def reset_clock(self) -> None:
        """Rewind the clock (between benchmark operations)."""
        if self._queue:
            raise RuntimeError("cannot reset the clock with messages "
                               "in flight")
        self.now = 0.0
