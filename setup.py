"""Legacy setup shim.

The modern PEP-660 editable-install path requires the ``wheel``
package; in fully offline environments without it, ``pip install -e .``
falls back to this shim (and ``python setup.py develop`` also works).
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
