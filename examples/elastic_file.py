#!/usr/bin/env python3
"""The abstract's promise: the file 'grows and shrinks with the
storage needs of applications, but transparently to them'.

Grows an LH* file under inserts, shrinks it under deletes, shows that
clients with images from the large epoch keep working through
tombstone redirection, then runs a concurrent mixed batch under
jittered (reordering) latency.
"""

import random

from repro.net import JitterLatencyModel, Network
from repro.sdds import LHStarFile


def main() -> None:
    file = LHStarFile(
        network=Network(JitterLatencyModel(seed=1, jitter=0.01)),
        bucket_capacity=8,
        shrink=True,
    )
    rng = random.Random(7)

    print("phase 1: growth")
    keys = [rng.randrange(10 ** 9) for __ in range(1500)]
    for key in keys:
        file.insert(key, f"record-{key}".encode() + b"\x00")
    i, n = file.state
    print(f"  {file.record_count} records -> "
          f"{file.coordinator.bucket_count} buckets, state (i={i}, n={n})")

    # A client that converged on the big file.
    veteran = file.new_client()
    for key in rng.sample(keys, 150):
        op = veteran.start_keyed("lookup", key)
        file.network.run()
        veteran.take_reply(op)
    image = (1 << veteran.i_image) + veteran.n_image
    print(f"  veteran client image: {image} buckets")

    print("phase 2: shrink")
    survivors = keys[1200:]
    for key in keys[:1200]:
        file.delete(key)
    i, n = file.state
    tombstones = sum(1 for b in file.buckets.values() if b.retired)
    print(f"  {file.record_count} records -> "
          f"{file.coordinator.bucket_count} live buckets "
          f"({tombstones} tombstones), state (i={i}, n={n})")

    print("phase 3: the veteran client (oversized image) still works")
    before = file.network.stats.snapshot()
    for key in rng.sample(survivors, 100):
        op = veteran.start_keyed("lookup", key)
        file.network.run()
        assert veteran.take_reply(op)["ok"]
    cost = file.network.stats.diff(before).messages / 100
    print(f"  100/100 lookups resolved at {cost:.2f} msgs each "
          "(tombstones redirect)")

    print("phase 4: concurrent mixed batch under jittered latency")
    batch = []
    for key in survivors[:100]:
        batch.append(("lookup", key))
    for k in range(400):
        batch.append(("insert", 2_000_000_000 + k, b"fresh\x00"))
    results = file.run_concurrent(batch, concurrency=8)
    found = sum(1 for r in results[:100] if r is not None)
    print(f"  {found}/100 concurrent lookups correct while 400 inserts "
          "forced splits mid-flight")
    i, n = file.state
    print(f"  regrown to {file.coordinator.bucket_count} buckets, "
          f"state (i={i}, n={n})")


if __name__ == "__main__":
    main()
