#!/usr/bin/env python3
"""Quickstart: store encrypted records, search them by content.

Runs the paper's complete scheme end-to-end on a handful of records:
chunk size 4, all four chunkings stored (section 2.3's full layout),
ECB chunk encryption on, records strongly AES-CTR encrypted at the
record-store site.
"""

from repro import EncryptedSearchableStore, SchemeParameters
from repro.obs import Tracer, use_tracer


def main() -> None:
    params = SchemeParameters.full(4, master_key=b"quickstart-demo-key")
    store = EncryptedSearchableStore(params)
    print(f"scheme: {params.describe()}\n")

    phonebook = {
        4154099999: "415-409-9999 SCHWARZ THOMAS",
        4154091234: "415-409-1234 LITWIN WITOLD",
        4154095678: "415-409-5678 TSUI PETER",
        4154090007: "415-409-0007 ABOGADO ALEJANDRO & CATHERINE",
    }
    for rid, text in phonebook.items():
        store.put(rid, text)
    print(f"stored {len(store)} records "
          f"({store.footprint().index_records} index streams)\n")

    # What a storage site actually sees: ciphertext only.
    sample = store.record_file.all_records()[0]
    print(f"record-store site sees: {sample.content[:24].hex()}…\n")

    # A tracer captures what each operation cost on the wire — no
    # hand-diffing of NetworkStats snapshots needed.
    tracer = Tracer(network=store.network)
    with use_tracer(tracer):
        for pattern in ("SCHWARZ", "WITOLD", "ALEJANDRO", "XYZW"):
            result = store.search(pattern)
            matched = [store.get(rid) for rid in sorted(result.matches)]
            print(f"search {pattern!r:12} -> "
                  f"{len(result.matches)} match(es)")
            for text in matched:
                print(f"    {text}")

    print("\nwhat each search cost (from the trace):")
    print(tracer.render_tree())
    print("\nevery lookup decrypts only at the client — "
          "no site ever holds a searchable plaintext")


if __name__ == "__main__":
    main()
