#!/usr/bin/env python3
"""The paper's motivating workload: an encrypted phone directory.

Loads a slice of the synthetic SF directory into the complete scheme
(Stage 2 lossy compression + Stage 3 dispersion over 2 sites), runs
last-name searches, and reports the precision/false-positive anatomy
that the paper's section 7 studies — including the short-name effect
("Yu", "Ou", "Ip"… cause almost all false positives).
"""

from collections import Counter

from repro import (
    EncryptedSearchableStore,
    SchemeParameters,
    generate_directory,
)


def main() -> None:
    directory = generate_directory(4000, seed=2006).sample(250, seed=1)
    corpus = [entry.name.encode("ascii") for entry in directory]

    params = SchemeParameters.full(
        4, n_codes=64, dispersal=2, master_key=b"phonebook-demo"
    )
    store = EncryptedSearchableStore.with_trained_encoder(params, corpus)
    print(f"scheme: {params.describe()}")

    for entry in directory:
        store.put(entry.rid, entry.record_text)
    footprint = store.footprint()
    print(f"stored {len(store)} records; index/record byte ratio "
          f"{footprint.overhead:.2f}\n")

    queries = sorted({entry.last_name for entry in directory})[:40]
    total_fp = 0
    fp_by_length: Counter = Counter()
    print(f"{'query':14} {'true':>5} {'cand.':>6} {'FPs':>4} "
          f"{'precision':>9}")
    for query in queries:
        if len(query) < params.min_query_length:
            continue
        result = store.search(query)
        total_fp += len(result.false_positives)
        fp_by_length[len(query)] += len(result.false_positives)
        print(f"{query:14} {len(result.matches):5} "
              f"{len(result.candidates):6} "
              f"{len(result.false_positives):4} "
              f"{result.precision:9.0%}")
    print(f"\ntotal false positives: {total_fp}")
    if total_fp:
        print("false positives by query length "
              "(short names dominate, as in the paper):")
        for length in sorted(fp_by_length):
            if fp_by_length[length]:
                print(f"  length {length}: {fp_by_length[length]}")
    print("\nrecall is 100% by construction: the client filters false "
          "positives after decryption, never misses a true match")


if __name__ == "__main__":
    main()
