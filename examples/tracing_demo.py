#!/usr/bin/env python3
"""Tracing demo: watch a search survive a lossy network.

Runs the phonebook workload on an unreliable network (10% loss, 2%
duplication), with a tracer and metrics registry installed.  The
output is the span tree — every put/search/get with its message and
byte cost, and the ``lh.retry`` / ``lh.dedup_replay`` events showing
where the timeout-retry layer papered over injected faults — followed
by the per-operation cost breakdown table and the metrics dump.
"""

from repro import EncryptedSearchableStore, SchemeParameters
from repro.net import RetryPolicy, UnreliableNetwork
from repro.obs import (
    MetricsRegistry,
    Tracer,
    render_report,
    use_metrics,
    use_tracer,
    watch_network,
)

PHONEBOOK = {
    4154099999: "415-409-9999 SCHWARZ THOMAS",
    4154091234: "415-409-1234 LITWIN WITOLD",
    4154095678: "415-409-5678 TSUI PETER",
    4154090007: "415-409-0007 ABOGADO ALEJANDRO & CATHERINE",
}


def main() -> None:
    net = UnreliableNetwork(
        seed=2006, loss_rate=0.10, duplication_rate=0.02
    )
    store = EncryptedSearchableStore(
        SchemeParameters.full(4, master_key=b"tracing-demo-key"),
        network=net,
        retry_policy=RetryPolicy(timeout=0.1, max_retries=10),
    )
    tracer = Tracer(network=net)
    metrics = MetricsRegistry()
    watch_network(net, metrics)

    with use_tracer(tracer), use_metrics(metrics):
        for rid, text in PHONEBOOK.items():
            store.put(rid, text)
        result = store.search("SCHWARZ")
        for rid in sorted(result.matches):
            store.get(rid)

    print("=== span tree "
          "(lh.retry / lh.dedup_replay mark recovered faults) ===\n")
    print(tracer.render_tree())

    print("\n=== per-operation cost breakdown ===\n")
    print(render_report(tracer.finished))

    print("\n=== metrics ===\n")
    print(metrics.dump_text())

    dropped = net.stats.dropped
    retries = net.stats.retries
    print(f"\nthe network dropped {dropped} message(s) and the "
          f"clients retried {retries} time(s); every record still "
          f"answered: {sorted(result.matches)}")


if __name__ == "__main__":
    main()
