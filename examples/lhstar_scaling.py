#!/usr/bin/env python3
"""The SDDS substrate in action: LH* growing under load.

Shows the properties the paper inherits from LH*: the file spreads
over more buckets as it grows, clients with stale images still reach
every record in at most two extra hops, and converged clients pay a
constant two messages per lookup regardless of file size.
"""

import random

from repro.sdds import LHStarFile


def main() -> None:
    file = LHStarFile(bucket_capacity=16)
    rng = random.Random(42)
    print(f"{'records':>8} {'buckets':>8} {'(i, n)':>8} "
          f"{'msgs/insert':>12} {'msgs/lookup':>12}")
    total = 0
    for batch in range(6):
        before = file.network.stats.snapshot()
        for __ in range(500):
            key = rng.randrange(10 ** 9)
            file.insert(key, f"record-{key}".encode() + b"\x00")
            total += 1
        insert_cost = file.network.stats.diff(before).messages / 500
        probe = rng.sample(sorted(
            rid for bucket in file.buckets.values()
            for rid in bucket.records
        ), 100)
        for key in probe:
            file.lookup(key)  # converge the client image
        before = file.network.stats.snapshot()
        for key in probe:
            file.lookup(key)
        lookup_cost = file.network.stats.diff(before).messages / 100
        i, n = file.state
        print(f"{total:8} {file.bucket_count:8} {f'({i},{n})':>8} "
              f"{insert_cost:12.2f} {lookup_cost:12.2f}")

    print("\na brand-new client (image = one bucket) probes the "
          "full file:")
    stale = file.new_client()
    before = file.network.stats.snapshot()
    probe = rng.sample(sorted(
        rid for bucket in file.buckets.values() for rid in bucket.records
    ), 200)
    for key in probe:
        op = stale.start_keyed("lookup", key)
        file.network.run()
        assert stale.take_reply(op)["ok"]
    cost = file.network.stats.diff(before).messages / 200
    print(f"  {cost:.2f} messages/lookup while converging "
          f"({stale.iam_count} image adjustments received)")
    print(f"  final image: 2^{stale.i_image} + {stale.n_image} buckets "
          f"of the real {file.bucket_count}")

    print("\nparallel scan (substring search on all buckets in one "
          "round):")
    needle = f"record-{probe[0]}".encode()
    before = file.network.stats.snapshot()
    hits = file.scan(lambda r: r.rid if needle in r.content else None)
    delta = file.network.stats.diff(before)
    print(f"  {len(hits)} hit(s) for {needle.decode()!r}, "
          f"{delta.messages} messages "
          f"({file.bucket_count} buckets x request+reply)")


if __name__ == "__main__":
    main()
