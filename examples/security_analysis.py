#!/usr/bin/env python3
"""Security evaluation of the index records, stage by stage.

Reproduces the analytical spine of the paper's sections 6-7 on a live
pipeline: how close does each stage combination get to
"indistinguishable from random bits", and what does a frequency
attacker with a perfect language model still recover?
"""

from collections import Counter

from repro.analysis.attack import frequency_match_attack
from repro.analysis.chisq import ngram_chi_square
from repro.analysis.entropy import redundancy, shannon_entropy
from repro.analysis.randomness import randomness_battery
from repro.core import FrequencyEncoder, IndexPipeline, SchemeParameters
from repro.core.chunking import record_chunks
from repro.data import generate_directory


def bitpack(values, bits):
    accumulator, filled, out = 0, 0, bytearray()
    for value in values:
        accumulator = (accumulator << bits) | value
        filled += bits
        while filled >= 8:
            filled -= 8
            out.append((accumulator >> filled) & 0xFF)
    return bytes(out)


def main() -> None:
    directory = generate_directory(3000, seed=2006).sample(800, seed=4)
    corpus = [entry.name.encode("ascii") for entry in directory]

    configs = [
        ("Stage 1 only (ECB on raw 4-symbol chunks)",
         SchemeParameters.full(4), None),
        ("Stages 1+2 (64-code lossy compression)",
         SchemeParameters.full(4, n_codes=64), 64),
        ("Stages 1+2+3 (+ dispersion, k=2)",
         SchemeParameters.full(4, n_codes=64, dispersal=2), 64),
    ]

    # Baseline: the raw corpus.
    raw_counts = Counter()
    for text in corpus:
        raw_counts.update(bytes([b]) for b in text)
    print("raw corpus:")
    print(f"  unigram entropy {shannon_entropy(raw_counts):.2f} bits, "
          f"redundancy {redundancy(raw_counts, len(raw_counts)):.1%}\n")

    for label, params, n_codes in configs:
        encoder = (
            FrequencyEncoder.train(corpus, params.chunk_size, n_codes)
            if n_codes else None
        )
        pipeline = IndexPipeline(params, encoder)
        values = []
        plain_values = []
        for text in corpus:
            content = text + b"\x00"
            stream = pipeline.build_index_streams(content)[(0, 0)]
            width = params.piece_width
            values.extend(
                int.from_bytes(stream[i:i + width], "big")
                for i in range(0, len(stream), width)
            )
            plain_values.extend(
                pipeline.chunk_value(c)
                for c in record_chunks(content, params.chunk_size, 0)
            )
        print(label)
        if params.piece_bits <= 16:
            chi, __ = ngram_chi_square(
                [tuple(values)], 1, symbol_space=1 << params.piece_bits
            )
            print(f"  chi^2 over the {params.piece_bits}-bit value "
                  f"domain: {chi:,.1f}")
        battery = randomness_battery(bitpack(values, params.piece_bits))
        passed = sum(1 for r in battery if r.passed)
        print(f"  NIST-style battery: {passed}/{len(battery)} passed")
        if params.dispersal == 1:
            prp = pipeline._prps[0]
            cipher = [prp.encrypt(v) for v in plain_values]
            outcome = frequency_match_attack(
                cipher, Counter(plain_values), truth=prp.decrypt
            )
            print(f"  frequency attack (perfect model): "
                  f"{outcome.symbol_accuracy:.1%} of stream positions")
        else:
            print("  frequency attack: single site sees only "
                  f"{params.piece_bits}-bit pieces of every chunk")
        print()

    print("conclusion (as in the paper): each stage reduces what a "
          "single site leaks — Stage 2\nflattens chunk frequencies, "
          "Stage 3 hides whole chunks from every site — but the\n"
          "residual encoding skew still shows in the statistics: "
          "'the results do (not yet?)\njustify more than cautious "
          "optimism', at the price of false positives")


if __name__ == "__main__":
    main()
