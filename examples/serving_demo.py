#!/usr/bin/env python3
"""Serving demo: the tracing workload on real processes.

The live-backend variant of ``tracing_demo.py``: the same phonebook
workload, but instead of the discrete-event simulator the store runs
against a :class:`repro.net.live.LiveCluster` — one OS process per
bucket plus a coordinator, talking the wire protocol documented in
``docs/SERVING.md``.  The observability stack is backend-agnostic, so
the tracer and metrics registry install exactly as they do on the
simulator; the only new trick is ``network.remote_metrics()``, which
collects each site process's metrics over the control plane.
"""

from repro import EncryptedSearchableStore, SchemeParameters
from repro.net.live import LiveCluster
from repro.obs import (
    MetricsRegistry,
    Tracer,
    render_report,
    use_metrics,
    use_tracer,
    watch_network,
)

PHONEBOOK = {
    4154099999: "415-409-9999 SCHWARZ THOMAS",
    4154091234: "415-409-1234 LITWIN WITOLD",
    4154095678: "415-409-5678 TSUI PETER",
    4154090007: "415-409-0007 ABOGADO ALEJANDRO & CATHERINE",
}


def main() -> None:
    with LiveCluster(buckets=8) as cluster:
        net = cluster.connect()
        store = EncryptedSearchableStore(
            SchemeParameters.full(4, master_key=b"serving-demo-key"),
            network=net,
            bucket_capacity=4,
            name="demo",
        )
        tracer = Tracer(network=net)
        metrics = MetricsRegistry()
        watch_network(net, metrics)

        with use_tracer(tracer), use_metrics(metrics):
            for rid, text in PHONEBOOK.items():
                store.put(rid, text)
            result = store.search("SCHWARZ")
            for rid in sorted(result.matches):
                store.get(rid)

        print("=== span tree (costs are real wire bytes) ===\n")
        print(tracer.render_tree())

        print("\n=== per-operation cost breakdown ===\n")
        print(render_report(tracer.finished))

        print("\n=== client-side metrics ===\n")
        print(metrics.dump_text())

        print("\n=== per-site metrics (over the control plane) ===\n")
        for site, dump in sorted(net.remote_metrics().items()):
            interesting = {
                name: value for name, value in sorted(dump.items())
                if value
            }
            if interesting:
                print(f"{site}: {interesting}")

        print(f"\n{net.stats.messages} messages / {net.stats.bytes} "
              f"bytes billed across {len(cluster.log_paths())} server "
              f"processes; matches: {sorted(result.matches)}")


if __name__ == "__main__":
    main()
