#!/usr/bin/env python3
"""High availability: the LH*_RS parity substrate.

The paper stores records "in a standard SDDS such as LH* or its
high-availability version LH*_RS".  This demo runs the encrypted
store on LH*_RS, then simulates bucket losses and recovers the
(encrypted) records from Reed-Solomon parity — without ever
decrypting anything.
"""

from repro import EncryptedSearchableStore, SchemeParameters
from repro.sdds import LHStarRSFile


def main() -> None:
    print("1. A raw LH*_RS file surviving a double bucket failure\n")
    file = LHStarRSFile(bucket_capacity=4, group_size=4, parity_count=2)
    for k in range(120):
        file.insert(k, f"payload-{k:03d}".encode() + b"\x00")
    print(f"   {file.record_count} records over {file.bucket_count} "
          f"data buckets, {len(file.parity_buckets)} parity buckets")
    victims = sorted(file.buckets)[:2]
    recovered = file.recover_buckets(victims)
    print(f"   simulated loss of buckets {victims}: recovered "
          f"{sum(len(r) for r in recovered.values())} records")
    assert file.verify_recovery(victims)
    print("   bit-for-bit identical to the live buckets\n")

    print("2. The encrypted searchable store on an LH*_RS record store\n")
    store = EncryptedSearchableStore(
        SchemeParameters.full(4), high_availability=True
    )
    phonebook = {
        4154099999: "415-409-9999 SCHWARZ THOMAS",
        4154091234: "415-409-1234 LITWIN WITOLD",
        4154095678: "415-409-5678 TSUI PETER",
    }
    for rid, text in phonebook.items():
        store.put(rid, text)
    result = store.search("LITWIN")
    print(f"   search 'LITWIN' -> {sorted(result.matches)}")
    rs_file = store.record_file
    victim = next(iter(rs_file.buckets))
    assert rs_file.verify_recovery([victim])
    print(f"   record-store bucket {victim} lost and recovered from "
          "parity — ciphertext restored, keys never left the client")
    parity_msgs = store.network.stats.by_kind["parity_delta"]
    print(f"   parity maintenance cost so far: {parity_msgs} delta "
          "messages")


if __name__ == "__main__":
    main()
