#!/usr/bin/env python3
"""Word search (SWP) next to substring search — the paper's §8 wish.

Runs the same directory slice through both index designs and shows
what each can and cannot answer, and at what cost.
"""

from repro import (
    EncryptedSearchableStore,
    FrequencyEncoder,
    SchemeParameters,
    generate_directory,
)
from repro.core.wordsearch import EncryptedWordStore


def main() -> None:
    directory = generate_directory(2000, seed=2006).sample(120, seed=3)
    corpus = [e.name.encode("ascii") for e in directory]

    params = SchemeParameters.full(4, n_codes=64)
    substring = EncryptedSearchableStore(
        params, encoder=FrequencyEncoder.train(corpus, 4, 64)
    )
    words = EncryptedWordStore(b"word-demo-key")
    for entry in directory:
        substring.put(entry.rid, entry.record_text)
        words.put(entry.rid, entry.record_text)

    probes = [
        ("MARTINEZ", "a whole surname"),
        ("MARTIN", "a prefix of it (substring-only)"),
        ("ARTI", "an interior fragment (substring-only)"),
    ]
    print(f"{'query':10} {'substring scheme':>22} {'SWP words':>16}")
    for query, label in probes:
        sub = substring.search(query)
        word = words.search(query)
        print(f"{query:10} {len(sub.matches):9} hits "
              f"({sub.cost.messages:3} msgs) "
              f"{len(word.matches):7} hits ({word.cost.messages:3} msgs)"
              f"   # {label}")

    print("\nconjunctive query on the substring scheme "
          "(one scan round):")
    result = substring.search_all(["MART", "INEZ"])
    print(f"  {result.pattern!r} -> {len(result.matches)} matches, "
          f"{result.cost.messages} messages")

    print("\nanchored queries (paper's 'Schwarz ' with trailing zero):")
    some = next(iter(directory)).last_name
    anchored = substring.search(some, anchor_start=True)
    print(f"  records whose name field STARTS with {some!r}: "
          f"{len(anchored.matches)}")

    print("\ntrade-off summary: SWP answers word lookups with "
          "cryptographic precision and 4 msgs,\nbut only the chunk "
          "scheme answers fragments, prefixes and conjunctions — "
          "the paper's point.")


if __name__ == "__main__":
    main()
